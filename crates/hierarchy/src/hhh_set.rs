//! Hierarchical-heavy-hitter set computation.
//!
//! This module implements the *output* side of every HHH algorithm in the
//! workspace: given per-prefix frequency estimates (upper and lower bounds),
//! walk the hierarchy level by level, compute *conditioned frequencies* with
//! respect to the already-selected HHH set (Algorithms 3 and 4 of the paper —
//! `calcPred` for one and two dimensions), and keep every prefix whose
//! conditioned frequency reaches the threshold (Algorithm 2, `output`).
//!
//! The same code serves H-Memento, MST, window-MST, RHHH and the exact
//! oracle; only the [`PrefixEstimator`] they plug in differs.

use std::collections::HashMap;
use std::hash::Hash;

use crate::hierarchy::Hierarchy;

/// Frequency estimates for prefixes, as consumed by the HHH set computation.
///
/// `upper_bound` plays the role of `f̂⁺` and `lower_bound` of `f̂⁻` in the
/// paper. Exact oracles return the same value for both.
pub trait PrefixEstimator<P> {
    /// Upper bound on the (window) frequency of `p`.
    fn upper_bound(&self, p: &P) -> f64;
    /// Lower bound on the (window) frequency of `p`.
    fn lower_bound(&self, p: &P) -> f64;
}

/// Parameters of the HHH set computation.
#[derive(Debug, Clone, Copy)]
pub struct HhhParams {
    /// Absolute threshold `θ·W` (in packets): a prefix is reported when its
    /// conditioned frequency reaches this value.
    pub threshold: f64,
    /// The additive compensation for sampling error added to every
    /// conditioned frequency (`2·Z_{1−δ}·√(V·W)` in Algorithm 2, line 8).
    /// Zero for exact or unsampled algorithms.
    pub sampling_slack: f64,
}

impl HhhParams {
    /// Parameters without sampling compensation.
    pub fn exact(threshold: f64) -> Self {
        HhhParams {
            threshold,
            sampling_slack: 0.0,
        }
    }
}

/// `G(q | P)`: the subset of `P` whose elements are strictly generalized by
/// `q` and have no intermediate element of `P` between themselves and `q`
/// (the "closest descendants" of `q` inside `P`).
pub fn g_set<Hi: Hierarchy>(hier: &Hi, q: &Hi::Prefix, set: &[Hi::Prefix]) -> Vec<Hi::Prefix> {
    let descendants: Vec<Hi::Prefix> = set
        .iter()
        .filter(|h| hier.strictly_generalizes(q, h))
        .copied()
        .collect();
    descendants
        .iter()
        .filter(|h| {
            !descendants
                .iter()
                .any(|mid| *mid != **h && hier.strictly_generalizes(mid, h))
        })
        .copied()
        .collect()
}

/// `calcPred` for one dimension (Algorithm 3): subtract the lower-bound
/// frequencies of the closest already-selected descendants.
fn calc_pred_1d<Hi, E>(hier: &Hi, estimator: &E, q: &Hi::Prefix, selected: &[Hi::Prefix]) -> f64
where
    Hi: Hierarchy,
    E: PrefixEstimator<Hi::Prefix> + ?Sized,
{
    let g = g_set(hier, q, selected);
    -g.iter().map(|h| estimator.lower_bound(h)).sum::<f64>()
}

/// `calcPred` for two dimensions (Algorithm 4): subtract closest descendants,
/// then add back the upper-bound frequency of each pairwise greatest lower
/// bound that is not already covered by a third descendant
/// (inclusion–exclusion).
fn calc_pred_2d<Hi, E>(hier: &Hi, estimator: &E, q: &Hi::Prefix, selected: &[Hi::Prefix]) -> f64
where
    Hi: Hierarchy,
    E: PrefixEstimator<Hi::Prefix> + ?Sized,
{
    let g = g_set(hier, q, selected);
    let mut r = -g.iter().map(|h| estimator.lower_bound(h)).sum::<f64>();
    for (i, h) in g.iter().enumerate() {
        for h2 in g.iter().skip(i + 1) {
            if let Some(glb) = hier.glb(h, h2) {
                let covered = g
                    .iter()
                    .any(|h3| h3 != h && h3 != h2 && hier.generalizes(h3, &glb));
                if !covered {
                    r += estimator.upper_bound(&glb);
                }
            }
        }
    }
    r
}

/// Conservative estimate of the conditioned frequency `C_{q|P}` of prefix `q`
/// with respect to the already-selected set `P`, including the sampling
/// compensation.
pub fn conditioned_frequency_estimate<Hi, E>(
    hier: &Hi,
    estimator: &E,
    q: &Hi::Prefix,
    selected: &[Hi::Prefix],
    sampling_slack: f64,
) -> f64
where
    Hi: Hierarchy,
    E: PrefixEstimator<Hi::Prefix> + ?Sized,
{
    let pred = if hier.dimensions() == 1 {
        calc_pred_1d(hier, estimator, q, selected)
    } else {
        calc_pred_2d(hier, estimator, q, selected)
    };
    estimator.upper_bound(q) + pred + sampling_slack
}

/// The HHH `output` procedure (Algorithm 2): iterate candidate prefixes from
/// depth 0 up to the maximal depth, keep every prefix whose conditioned
/// frequency (with respect to the prefixes kept so far) reaches the
/// threshold. Returns the selected prefixes sorted by depth then value.
pub fn compute_hhh<Hi, E>(
    hier: &Hi,
    estimator: &E,
    candidates: &[Hi::Prefix],
    params: HhhParams,
) -> Vec<Hi::Prefix>
where
    Hi: Hierarchy,
    E: PrefixEstimator<Hi::Prefix> + ?Sized,
{
    let mut by_depth: Vec<Vec<Hi::Prefix>> = vec![Vec::new(); hier.max_depth() + 1];
    let mut seen = std::collections::HashSet::new();
    for p in candidates {
        if seen.insert(*p) {
            by_depth[hier.depth(p)].push(*p);
        }
    }
    let mut selected: Vec<Hi::Prefix> = Vec::new();
    for level in by_depth.iter() {
        // Candidates at the same depth are judged against the set selected at
        // strictly lower depths (they cannot generalize one another), so the
        // in-level iteration order does not affect the result.
        let mut kept_this_level = Vec::new();
        for p in level {
            let c = conditioned_frequency_estimate(
                hier,
                estimator,
                p,
                &selected,
                params.sampling_slack,
            );
            if c >= params.threshold {
                kept_this_level.push(*p);
            }
        }
        selected.extend(kept_this_level);
    }
    selected.sort_by(|a, b| hier.depth(a).cmp(&hier.depth(b)).then(a.cmp(b)));
    selected
}

// ---------------------------------------------------------------------------
// Exact oracle
// ---------------------------------------------------------------------------

/// Exact per-prefix frequencies of a batch of items: every item contributes
/// one to each of its `H` generalizations.
pub fn prefix_frequencies<Hi, I>(hier: &Hi, items: I) -> HashMap<Hi::Prefix, u64>
where
    Hi: Hierarchy,
    I: IntoIterator<Item = Hi::Item>,
{
    let mut freqs: HashMap<Hi::Prefix, u64> = HashMap::new();
    for item in items {
        for i in 0..hier.h() {
            *freqs.entry(hier.prefix_at(item, i)).or_insert(0) += 1;
        }
    }
    freqs
}

/// An exact [`PrefixEstimator`] backed by a frequency table (upper bound =
/// lower bound = exact frequency).
#[derive(Debug, Clone)]
pub struct ExactPrefixOracle<P: Eq + Hash> {
    freqs: HashMap<P, u64>,
}

impl<P: Eq + Hash + Copy> ExactPrefixOracle<P> {
    /// Builds an oracle from a frequency table.
    pub fn new(freqs: HashMap<P, u64>) -> Self {
        ExactPrefixOracle { freqs }
    }

    /// Builds an oracle from a batch of items under a hierarchy.
    pub fn from_items<Hi, I>(hier: &Hi, items: I) -> Self
    where
        Hi: Hierarchy<Prefix = P>,
        I: IntoIterator<Item = Hi::Item>,
    {
        ExactPrefixOracle {
            freqs: prefix_frequencies(hier, items),
        }
    }

    /// Exact frequency of a prefix.
    pub fn frequency(&self, p: &P) -> u64 {
        self.freqs.get(p).copied().unwrap_or(0)
    }

    /// All prefixes with non-zero frequency.
    pub fn prefixes(&self) -> Vec<P> {
        self.freqs.keys().copied().collect()
    }

    /// Number of tracked prefixes.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True when no prefix has been recorded.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }
}

impl<P: Eq + Hash + Copy> PrefixEstimator<P> for ExactPrefixOracle<P> {
    fn upper_bound(&self, p: &P) -> f64 {
        self.frequency(p) as f64
    }

    fn lower_bound(&self, p: &P) -> f64 {
        self.frequency(p) as f64
    }
}

/// Exact hierarchical heavy hitters of a batch of items with threshold
/// `threshold` packets: the ground truth against which approximate HHH sets
/// are evaluated (OPT in the flood experiment of §6.4).
pub fn exact_hhh<Hi>(hier: &Hi, items: &[Hi::Item], threshold: f64) -> Vec<Hi::Prefix>
where
    Hi: Hierarchy,
{
    let oracle = ExactPrefixOracle::from_items(hier, items.iter().copied());
    let candidates = oracle.prefixes();
    compute_hhh(hier, &oracle, &candidates, HhhParams::exact(threshold))
}

/// Exact conditioned frequency from first principles (Definition in §4.2):
/// the number of items generalized by `q` but by no prefix in `selected`.
/// Quadratic and only used by tests to validate `calcPred`.
pub fn conditioned_frequency_exact<Hi>(
    hier: &Hi,
    items: &[Hi::Item],
    q: &Hi::Prefix,
    selected: &[Hi::Prefix],
) -> u64
where
    Hi: Hierarchy,
{
    items
        .iter()
        .filter(|&&item| {
            hier.prefix_matches(q, item) && !selected.iter().any(|p| hier.prefix_matches(p, item))
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{SrcDstHierarchy, SrcHierarchy};
    use crate::prefix::{p1d, Prefix1D};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn g_set_matches_paper_example() {
        // p = 142.14.*, P = {142.14.13.*, 142.14.13.14} -> G = {142.14.13.*}
        let hier = SrcHierarchy;
        let p = p1d(142, 14, 0, 0, 16);
        let set = vec![p1d(142, 14, 13, 0, 24), p1d(142, 14, 13, 14, 32)];
        let g = g_set(&hier, &p, &set);
        assert_eq!(g, vec![p1d(142, 14, 13, 0, 24)]);
    }

    #[test]
    fn g_set_excludes_non_descendants_and_self() {
        let hier = SrcHierarchy;
        let p = p1d(10, 0, 0, 0, 8);
        let set = vec![
            p1d(10, 0, 0, 0, 8),  // p itself: excluded (strict)
            p1d(10, 1, 0, 0, 16), // closest descendant
            p1d(10, 1, 1, 0, 24), // shadowed by 10.1/16
            p1d(11, 0, 0, 0, 8),  // not a descendant
            p1d(10, 2, 2, 0, 24), // closest descendant (no /16 of it in P)
        ];
        let mut g = g_set(&hier, &p, &set);
        g.sort();
        let mut expected = vec![p1d(10, 1, 0, 0, 16), p1d(10, 2, 2, 0, 24)];
        expected.sort();
        assert_eq!(g, expected);
    }

    #[test]
    fn exact_hhh_single_flow() {
        let hier = SrcHierarchy;
        let items: Vec<u32> = std::iter::repeat_n(addr(181, 7, 20, 6), 100).collect();
        let hhh = exact_hhh(&hier, &items, 50.0);
        // The fully specified flow absorbs everything; ancestors have zero
        // conditioned frequency.
        assert_eq!(hhh, vec![p1d(181, 7, 20, 6, 32)]);
    }

    #[test]
    fn exact_hhh_aggregates_subnet() {
        let hier = SrcHierarchy;
        // 60 packets from distinct hosts of 10.1.1.0/24 (20 each) plus 40
        // noise packets from distinct /8s.
        let mut items = Vec::new();
        for host in 1..=3u8 {
            for _ in 0..20 {
                items.push(addr(10, 1, 1, host));
            }
        }
        for i in 0..40u8 {
            items.push(addr(100 + i, 0, 0, 1));
        }
        let hhh = exact_hhh(&hier, &items, 50.0);
        // No single host reaches 50, but the /24 (and nothing above it,
        // since its residual is absorbed) does.
        assert!(hhh.contains(&p1d(10, 1, 1, 0, 24)), "hhh = {hhh:?}");
        assert!(!hhh.iter().any(|p| p.len() == 32));
        // The root's conditioned frequency is the 40 noise packets < 50.
        assert!(!hhh.contains(&Prefix1D::root()));
    }

    #[test]
    fn exact_hhh_root_catches_leftover_mass() {
        let hier = SrcHierarchy;
        // 100 packets spread over distinct /8s: only the root aggregates them.
        let items: Vec<u32> = (0..100).map(|i| addr(i as u8, 0, 0, 1)).collect();
        let hhh = exact_hhh(&hier, &items, 60.0);
        assert_eq!(hhh, vec![Prefix1D::root()]);
    }

    #[test]
    fn conditioned_frequency_estimate_matches_exact_on_oracle_1d() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let hier = SrcHierarchy;
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<u32> = (0..2000)
            .map(|_| {
                addr(
                    10,
                    rng.gen_range(0..4),
                    rng.gen_range(0..4),
                    rng.gen_range(0..8),
                )
            })
            .collect();
        let oracle = ExactPrefixOracle::from_items(&hier, items.iter().copied());
        let threshold = 150.0;
        let hhh = compute_hhh(
            &hier,
            &oracle,
            &oracle.prefixes(),
            HhhParams::exact(threshold),
        );
        // Coverage check from first principles: any prefix not selected has
        // exact conditioned frequency below the threshold.
        for p in oracle.prefixes() {
            if !hhh.contains(&p) {
                let c = conditioned_frequency_exact(&hier, &items, &p, &hhh);
                assert!(
                    (c as f64) < threshold,
                    "prefix {p:?} violates coverage: C={c}"
                );
            }
        }
    }

    #[test]
    fn conditioned_frequency_estimate_matches_exact_on_oracle_2d() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let hier = SrcDstHierarchy;
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<(u32, u32)> = (0..1500)
            .map(|_| {
                (
                    addr(10, rng.gen_range(0..3), 0, rng.gen_range(0..4)),
                    addr(20, rng.gen_range(0..3), 0, rng.gen_range(0..4)),
                )
            })
            .collect();
        let oracle = ExactPrefixOracle::from_items(&hier, items.iter().copied());
        let threshold = 200.0;
        let hhh = compute_hhh(
            &hier,
            &oracle,
            &oracle.prefixes(),
            HhhParams::exact(threshold),
        );
        assert!(!hhh.is_empty());
        for p in oracle.prefixes() {
            if !hhh.contains(&p) {
                let c = conditioned_frequency_exact(&hier, &items, &p, &hhh);
                // With exact estimates the inclusion-exclusion bound is
                // conservative, so coverage must hold exactly.
                assert!(
                    (c as f64) < threshold,
                    "2D prefix {p:?} violates coverage: C={c}"
                );
            }
        }
    }

    #[test]
    fn prefix_frequencies_counts_every_level() {
        let hier = SrcHierarchy;
        let items = vec![addr(1, 2, 3, 4), addr(1, 2, 3, 5), addr(1, 9, 9, 9)];
        let freqs = prefix_frequencies(&hier, items);
        assert_eq!(freqs[&p1d(1, 2, 3, 4, 32)], 1);
        assert_eq!(freqs[&p1d(1, 2, 3, 0, 24)], 2);
        assert_eq!(freqs[&p1d(1, 0, 0, 0, 8)], 3);
        assert_eq!(freqs[&Prefix1D::root()], 3);
    }

    #[test]
    fn sampling_slack_only_adds_false_positives() {
        let hier = SrcHierarchy;
        let items: Vec<u32> = (0..50)
            .map(|i| addr(10, 0, 0, (i % 5) as u8))
            .chain((0..50).map(|i| addr(20, 0, 0, (i % 50) as u8)))
            .collect();
        let oracle = ExactPrefixOracle::from_items(&hier, items.iter().copied());
        let strict = compute_hhh(&hier, &oracle, &oracle.prefixes(), HhhParams::exact(30.0));
        let slackful = compute_hhh(
            &hier,
            &oracle,
            &oracle.prefixes(),
            HhhParams {
                threshold: 30.0,
                sampling_slack: 10.0,
            },
        );
        for p in &strict {
            assert!(
                slackful.contains(p),
                "slack must never remove true HHHs: missing {p:?}"
            );
        }
        assert!(slackful.len() >= strict.len());
    }
}
