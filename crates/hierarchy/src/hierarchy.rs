//! The [`Hierarchy`] abstraction and the two concrete hierarchies used in the
//! paper's evaluation.
//!
//! Every HHH algorithm in this workspace (H-Memento, MST, window-MST, RHHH,
//! the exact oracle) is generic over a [`Hierarchy`], so the one-dimensional
//! source hierarchy (`H = 5`) and the two-dimensional source × destination
//! hierarchy (`H = 25`) share a single implementation of the update and
//! output logic.

use std::fmt::Debug;
use std::hash::Hash;

use crate::prefix::{Prefix1D, Prefix2D};

/// A prefix hierarchy over packet keys.
///
/// `Item` is the fully specified packet key (a source address, or a
/// source/destination pair); `Prefix` is the type of (possibly partially
/// specified) prefixes. The hierarchy knows how to enumerate the `H`
/// generalizations of an item, compare prefixes under the generalization
/// order, and compute greatest lower bounds (for 2D inclusion–exclusion).
pub trait Hierarchy: Clone + Debug {
    /// Fully specified packet key.
    type Item: Copy + Eq + Hash + Debug;
    /// Prefix type (includes fully specified prefixes).
    type Prefix: Copy + Eq + Hash + Ord + Debug;

    /// The hierarchy size `H`: number of distinct prefixes generalizing one
    /// item (including the item itself and the root).
    fn h(&self) -> usize;

    /// The maximal depth `L`. Fully specified prefixes have depth 0.
    fn max_depth(&self) -> usize;

    /// Number of dimensions (1 or 2); selects the `calcPred` variant.
    fn dimensions(&self) -> usize;

    /// The `index`-th generalization of `item`, for `index` in `0..h()`.
    /// Index 0 must be the fully specified prefix.
    fn prefix_at(&self, item: Self::Item, index: usize) -> Self::Prefix;

    /// Depth of a prefix (0 for fully specified, `max_depth()` for the root).
    fn depth(&self, p: &Self::Prefix) -> usize;

    /// Generalization order: true when `p ⪯ q` (`p` generalizes `q`).
    fn generalizes(&self, p: &Self::Prefix, q: &Self::Prefix) -> bool;

    /// Greatest lower bound of two prefixes, if they have common descendants.
    fn glb(&self, a: &Self::Prefix, b: &Self::Prefix) -> Option<Self::Prefix>;

    /// True when the prefix generalizes the fully specified item.
    fn prefix_matches(&self, p: &Self::Prefix, item: Self::Item) -> bool;

    /// The *pattern index* of a prefix: which of the `H` generalization
    /// patterns it belongs to, in `0..h()`. This is the inverse of
    /// [`Hierarchy::prefix_at`] with respect to the pattern: for every item
    /// and index `i`, `pattern_index(&prefix_at(item, i)) == i`. MST and
    /// RHHH use it to route a prefix to its per-pattern summary instance.
    fn pattern_index(&self, p: &Self::Prefix) -> usize;

    /// All `H` generalizations of an item, fully specified first.
    fn prefixes_of(&self, item: Self::Item) -> Vec<Self::Prefix> {
        (0..self.h()).map(|i| self.prefix_at(item, i)).collect()
    }

    /// Strict generalization: `p ≺ q`.
    fn strictly_generalizes(&self, p: &Self::Prefix, q: &Self::Prefix) -> bool {
        p != q && self.generalizes(p, q)
    }
}

/// One-dimensional byte-granularity source-address hierarchy (`H = 5`,
/// `L = 4`), as used for the "1D" experiments of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrcHierarchy;

impl Hierarchy for SrcHierarchy {
    type Item = u32;
    type Prefix = Prefix1D;

    fn h(&self) -> usize {
        5
    }

    fn max_depth(&self) -> usize {
        4
    }

    fn dimensions(&self) -> usize {
        1
    }

    fn prefix_at(&self, item: u32, index: usize) -> Prefix1D {
        debug_assert!(index < 5);
        Prefix1D::new(item, 32 - 8 * index as u8)
    }

    fn depth(&self, p: &Prefix1D) -> usize {
        p.depth()
    }

    fn generalizes(&self, p: &Prefix1D, q: &Prefix1D) -> bool {
        p.generalizes(q)
    }

    fn glb(&self, a: &Prefix1D, b: &Prefix1D) -> Option<Prefix1D> {
        a.glb(b)
    }

    fn prefix_matches(&self, p: &Prefix1D, item: u32) -> bool {
        p.contains_addr(item)
    }

    fn pattern_index(&self, p: &Prefix1D) -> usize {
        p.depth()
    }
}

/// Two-dimensional byte-granularity source × destination hierarchy
/// (`H = 25`, `L = 8`), as used for the "2D" experiments of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrcDstHierarchy;

impl Hierarchy for SrcDstHierarchy {
    type Item = (u32, u32);
    type Prefix = Prefix2D;

    fn h(&self) -> usize {
        25
    }

    fn max_depth(&self) -> usize {
        8
    }

    fn dimensions(&self) -> usize {
        2
    }

    fn prefix_at(&self, item: (u32, u32), index: usize) -> Prefix2D {
        debug_assert!(index < 25);
        let (src, dst) = item;
        let si = (index / 5) as u8;
        let di = (index % 5) as u8;
        Prefix2D::new(
            Prefix1D::new(src, 32 - 8 * si),
            Prefix1D::new(dst, 32 - 8 * di),
        )
    }

    fn depth(&self, p: &Prefix2D) -> usize {
        p.depth()
    }

    fn generalizes(&self, p: &Prefix2D, q: &Prefix2D) -> bool {
        p.generalizes(q)
    }

    fn glb(&self, a: &Prefix2D, b: &Prefix2D) -> Option<Prefix2D> {
        a.glb(b)
    }

    fn prefix_matches(&self, p: &Prefix2D, item: (u32, u32)) -> bool {
        p.contains(item.0, item.1)
    }

    fn pattern_index(&self, p: &Prefix2D) -> usize {
        p.src.depth() * 5 + p.dst.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::p1d;

    #[test]
    fn src_hierarchy_enumerates_five_prefixes() {
        let h = SrcHierarchy;
        let item = u32::from_be_bytes([181, 7, 20, 6]);
        let prefixes = h.prefixes_of(item);
        assert_eq!(prefixes.len(), 5);
        assert_eq!(prefixes[0], p1d(181, 7, 20, 6, 32));
        assert_eq!(prefixes[4], Prefix1D::root());
        // All prefixes generalize the item and depths are 0..=4.
        for (i, p) in prefixes.iter().enumerate() {
            assert!(h.prefix_matches(p, item));
            assert_eq!(h.depth(p), i);
            assert_eq!(h.pattern_index(p), i, "pattern_index inverts prefix_at");
        }
        assert_eq!(h.h(), 5);
        assert_eq!(h.max_depth(), 4);
        assert_eq!(h.dimensions(), 1);
    }

    #[test]
    fn srcdst_hierarchy_enumerates_25_prefixes() {
        let h = SrcDstHierarchy;
        let item = (
            u32::from_be_bytes([181, 7, 20, 6]),
            u32::from_be_bytes([208, 67, 222, 222]),
        );
        let prefixes = h.prefixes_of(item);
        assert_eq!(prefixes.len(), 25);
        // All distinct, all generalize the item.
        let set: std::collections::HashSet<_> = prefixes.iter().collect();
        assert_eq!(set.len(), 25);
        for (i, p) in prefixes.iter().enumerate() {
            assert!(h.prefix_matches(p, item));
            assert_eq!(h.pattern_index(p), i, "pattern_index inverts prefix_at");
        }
        // Depth histogram of a 5x5 grid: depth d has min(d,8-d)+1 entries.
        let mut by_depth = vec![0usize; 9];
        for p in &prefixes {
            by_depth[h.depth(p)] += 1;
        }
        assert_eq!(by_depth, vec![1, 2, 3, 4, 5, 4, 3, 2, 1]);
        assert_eq!(h.h(), 25);
        assert_eq!(h.max_depth(), 8);
        assert_eq!(h.dimensions(), 2);
    }

    #[test]
    fn generalization_is_a_partial_order_2d() {
        let h = SrcDstHierarchy;
        let item = (0x01020304u32, 0x0a0b0c0du32);
        let ps = h.prefixes_of(item);
        for a in &ps {
            assert!(h.generalizes(a, a), "reflexive");
            for b in &ps {
                for c in &ps {
                    if h.generalizes(a, b) && h.generalizes(b, c) {
                        assert!(h.generalizes(a, c), "transitive");
                    }
                }
                if h.generalizes(a, b) && h.generalizes(b, a) {
                    assert_eq!(a, b, "antisymmetric");
                }
            }
        }
    }

    #[test]
    fn glb_is_commutative_and_generalized_by_both() {
        let h = SrcDstHierarchy;
        let item = (0xC0A80101u32, 0x08080808u32);
        let ps = h.prefixes_of(item);
        for a in &ps {
            for b in &ps {
                let g1 = h.glb(a, b);
                let g2 = h.glb(b, a);
                assert_eq!(g1, g2);
                if let Some(g) = g1 {
                    assert!(h.generalizes(a, &g));
                    assert!(h.generalizes(b, &g));
                }
            }
        }
    }
}
