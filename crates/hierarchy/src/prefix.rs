//! IPv4 prefixes at byte granularity and their generalization order.
//!
//! Following the paper (and the MST / RHHH line of work it builds on),
//! prefixes are byte-granular: the allowed lengths are 0, 8, 16, 24 and 32
//! bits. `181.7.20.6` (a *fully specified* prefix) is generalized by
//! `181.7.20.0/24`, `181.7.0.0/16`, `181.0.0.0/8` and `0.0.0.0/0`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Byte-granularity prefix lengths allowed by the hierarchies in this crate.
pub const BYTE_PREFIX_LENGTHS: [u8; 5] = [32, 24, 16, 8, 0];

/// A one-dimensional (source *or* destination) IPv4 prefix with a
/// byte-granularity length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix1D {
    /// Network address with all bits beyond `len` cleared.
    addr: u32,
    /// Prefix length in bits; always one of 0, 8, 16, 24, 32.
    len: u8,
}

impl Prefix1D {
    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// # Panics
    /// Panics if `len` is not one of 0, 8, 16, 24, 32.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(
            BYTE_PREFIX_LENGTHS.contains(&len),
            "prefix length must be byte-granular (0/8/16/24/32), got {len}"
        );
        Prefix1D {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The fully specified prefix (length 32) for an address.
    pub fn host(addr: u32) -> Self {
        Prefix1D { addr, len: 32 }
    }

    /// The root prefix `0.0.0.0/0`.
    pub fn root() -> Self {
        Prefix1D { addr: 0, len: 0 }
    }

    /// Network mask for a byte-granular length.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Masked network address.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Prefix length in bits. (`len` here is CIDR notation, not a container
    /// length, so there is deliberately no `is_empty`; `is_root` covers the
    /// zero-length case.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True when the prefix covers the whole address space.
    pub fn is_root(&self) -> bool {
        self.len == 0
    }

    /// True when the prefix is fully specified (a host address).
    pub fn is_host(&self) -> bool {
        self.len == 32
    }

    /// Depth in the hierarchy: fully specified items have depth 0, each byte
    /// of generalization adds one (so `/0` has depth 4).
    pub fn depth(&self) -> usize {
        ((32 - self.len) / 8) as usize
    }

    /// Generalizes this prefix to a (shorter or equal) byte-granular length.
    ///
    /// # Panics
    /// Panics if `len` is longer than the current length or not byte-granular.
    pub fn generalize_to(&self, len: u8) -> Self {
        assert!(len <= self.len, "cannot specialize {self} to /{len}");
        Prefix1D::new(self.addr, len)
    }

    /// The parent prefix (one byte shorter), or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.len == 0 {
            None
        } else {
            Some(Prefix1D::new(self.addr, self.len - 8))
        }
    }

    /// True when `self` generalizes `other` (`self ⪯ other`): every address
    /// matched by `other` is also matched by `self`. Reflexive.
    pub fn generalizes(&self, other: &Prefix1D) -> bool {
        self.len <= other.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// True when `self` strictly generalizes `other` (`self ≺ other`).
    pub fn strictly_generalizes(&self, other: &Prefix1D) -> bool {
        self.len < other.len && self.generalizes(other)
    }

    /// True when the prefix contains the given host address.
    pub fn contains_addr(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == self.addr
    }

    /// Greatest lower bound with `other`: the unique maximal common
    /// descendant, when one exists. For 1D prefixes this is simply the more
    /// specific of two comparable prefixes.
    pub fn glb(&self, other: &Prefix1D) -> Option<Prefix1D> {
        if self.generalizes(other) {
            Some(*other)
        } else if other.generalizes(self) {
            Some(*self)
        } else {
            None
        }
    }

    /// All generalizations of a host address, from fully specified (`/32`) to
    /// the root, i.e. depth 0 to 4.
    pub fn generalizations_of(addr: u32) -> [Prefix1D; 5] {
        [
            Prefix1D::new(addr, 32),
            Prefix1D::new(addr, 24),
            Prefix1D::new(addr, 16),
            Prefix1D::new(addr, 8),
            Prefix1D::new(addr, 0),
        ]
    }
}

impl fmt::Display for Prefix1D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            (a >> 24) & 0xff,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

/// Error returned when parsing a [`Prefix1D`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix1D {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = match s.split_once('/') {
            Some((a, l)) => (a, Some(l)),
            None => (s, None),
        };
        let octets: Vec<&str> = addr_part.split('.').collect();
        if octets.len() != 4 {
            return Err(ParsePrefixError(s.to_string()));
        }
        let mut addr = 0u32;
        for o in octets {
            let v: u32 = o.parse().map_err(|_| ParsePrefixError(s.to_string()))?;
            if v > 255 {
                return Err(ParsePrefixError(s.to_string()));
            }
            addr = (addr << 8) | v;
        }
        let len: u8 = match len_part {
            Some(l) => l.parse().map_err(|_| ParsePrefixError(s.to_string()))?,
            None => 32,
        };
        if !BYTE_PREFIX_LENGTHS.contains(&len) {
            return Err(ParsePrefixError(s.to_string()));
        }
        Ok(Prefix1D::new(addr, len))
    }
}

/// A two-dimensional (source, destination) prefix pair.
///
/// A 2D prefix generalizes another when it does so in *both* dimensions, so
/// the partial order forms a lattice and a pair of prefixes can have a unique
/// greatest lower bound (needed by the inclusion–exclusion rule of
/// Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix2D {
    /// Source prefix.
    pub src: Prefix1D,
    /// Destination prefix.
    pub dst: Prefix1D,
}

impl Prefix2D {
    /// Creates a 2D prefix from its components.
    pub fn new(src: Prefix1D, dst: Prefix1D) -> Self {
        Prefix2D { src, dst }
    }

    /// Fully specified 2D prefix for a (source, destination) address pair.
    pub fn host(src: u32, dst: u32) -> Self {
        Prefix2D {
            src: Prefix1D::host(src),
            dst: Prefix1D::host(dst),
        }
    }

    /// Depth: sum of the per-dimension depths (0 for fully specified,
    /// 8 for `(*, *)`).
    pub fn depth(&self) -> usize {
        self.src.depth() + self.dst.depth()
    }

    /// True when `self` generalizes `other` in both dimensions (reflexive).
    pub fn generalizes(&self, other: &Prefix2D) -> bool {
        self.src.generalizes(&other.src) && self.dst.generalizes(&other.dst)
    }

    /// True when `self` generalizes `other` and they differ.
    pub fn strictly_generalizes(&self, other: &Prefix2D) -> bool {
        self != other && self.generalizes(other)
    }

    /// Parents: generalize either the source or the destination by one byte.
    /// Fully general prefixes have no parents; others have one or two.
    pub fn parents(&self) -> Vec<Prefix2D> {
        let mut out = Vec::with_capacity(2);
        if let Some(sp) = self.src.parent() {
            out.push(Prefix2D::new(sp, self.dst));
        }
        if let Some(dp) = self.dst.parent() {
            out.push(Prefix2D::new(self.src, dp));
        }
        out
    }

    /// Greatest lower bound (`glb`): the unique maximal common descendant of
    /// the two prefixes, when one exists. Exists iff the two prefixes are
    /// compatible per dimension; the glb takes the more specific component in
    /// each dimension.
    pub fn glb(&self, other: &Prefix2D) -> Option<Prefix2D> {
        let src = self.src.glb(&other.src)?;
        let dst = self.dst.glb(&other.dst)?;
        Some(Prefix2D::new(src, dst))
    }

    /// True when the 2D prefix matches a (source, destination) address pair.
    pub fn contains(&self, src: u32, dst: u32) -> bool {
        self.src.contains_addr(src) && self.dst.contains_addr(dst)
    }
}

impl fmt::Display for Prefix2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src, self.dst)
    }
}

/// Convenience constructor for tests and examples: `p1d(a, b, c, d, len)`.
pub fn p1d(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix1D {
    Prefix1D::new(u32::from_be_bytes([a, b, c, d]), len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_and_constructors() {
        let p = p1d(181, 7, 20, 6, 16);
        assert_eq!(p.to_string(), "181.7.0.0/16");
        assert_eq!(p.len(), 16);
        assert_eq!(p.depth(), 2);
        assert!(Prefix1D::root().is_root());
        assert!(Prefix1D::host(1).is_host());
        assert_eq!(Prefix1D::mask(0), 0);
        assert_eq!(Prefix1D::mask(32), u32::MAX);
        assert_eq!(Prefix1D::mask(8), 0xff00_0000);
    }

    #[test]
    #[should_panic(expected = "byte-granular")]
    fn non_byte_length_panics() {
        let _ = Prefix1D::new(0, 12);
    }

    #[test]
    fn generalization_order_1d() {
        let host = p1d(181, 7, 20, 6, 32);
        let net24 = p1d(181, 7, 20, 0, 24);
        let net16 = p1d(181, 7, 0, 0, 16);
        let other = p1d(10, 0, 0, 0, 8);
        assert!(net24.generalizes(&host));
        assert!(net16.generalizes(&host));
        assert!(net16.generalizes(&net24));
        assert!(net16.generalizes(&net16), "reflexive");
        assert!(!net16.strictly_generalizes(&net16));
        assert!(net16.strictly_generalizes(&net24));
        assert!(!other.generalizes(&host));
        assert!(Prefix1D::root().generalizes(&other));
    }

    #[test]
    fn parent_chain_reaches_root() {
        let mut p = p1d(1, 2, 3, 4, 32);
        let mut depths = vec![p.depth()];
        while let Some(parent) = p.parent() {
            assert!(parent.generalizes(&p));
            p = parent;
            depths.push(p.depth());
        }
        assert_eq!(depths, vec![0, 1, 2, 3, 4]);
        assert!(p.is_root());
    }

    #[test]
    fn generalizations_of_host() {
        let g = Prefix1D::generalizations_of(u32::from_be_bytes([181, 7, 20, 6]));
        assert_eq!(g[0].to_string(), "181.7.20.6/32");
        assert_eq!(g[1].to_string(), "181.7.20.0/24");
        assert_eq!(g[4].to_string(), "0.0.0.0/0");
        for w in g.windows(2) {
            assert!(w[1].generalizes(&w[0]));
        }
    }

    #[test]
    fn glb_1d() {
        let a = p1d(181, 7, 0, 0, 16);
        let b = p1d(181, 7, 20, 0, 24);
        let c = p1d(10, 0, 0, 0, 8);
        assert_eq!(a.glb(&b), Some(b));
        assert_eq!(b.glb(&a), Some(b));
        assert_eq!(a.glb(&c), None);
        assert_eq!(a.glb(&a), Some(a));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["181.7.20.6/32", "181.7.0.0/16", "0.0.0.0/0", "10.0.0.0/8"] {
            let p: Prefix1D = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        let host: Prefix1D = "1.2.3.4".parse().unwrap();
        assert_eq!(host.len(), 32);
        assert!("1.2.3".parse::<Prefix1D>().is_err());
        assert!("1.2.3.4/12".parse::<Prefix1D>().is_err());
        assert!("1.2.3.400/8".parse::<Prefix1D>().is_err());
    }

    #[test]
    fn prefix2d_generalization_and_parents() {
        let item = Prefix2D::host(
            u32::from_be_bytes([181, 7, 20, 6]),
            u32::from_be_bytes([208, 67, 222, 222]),
        );
        let p1 = Prefix2D::new(p1d(181, 7, 20, 0, 24), p1d(208, 67, 222, 222, 32));
        let p2 = Prefix2D::new(p1d(181, 7, 20, 6, 32), p1d(208, 67, 222, 0, 24));
        assert!(p1.generalizes(&item));
        assert!(p2.generalizes(&item));
        assert!(!p1.generalizes(&p2));
        let parents = item.parents();
        assert_eq!(parents.len(), 2);
        assert!(parents.contains(&p1));
        assert!(parents.contains(&p2));
        // Root has no parents.
        let root = Prefix2D::new(Prefix1D::root(), Prefix1D::root());
        assert!(root.parents().is_empty());
        assert_eq!(root.depth(), 8);
        assert_eq!(item.depth(), 0);
    }

    #[test]
    fn prefix2d_glb() {
        // The glb of (181.7.20.*, dst-host) and (181.7.20.6, 208.67.222.*)
        // is the fully specified pair.
        let a = Prefix2D::new(p1d(181, 7, 20, 0, 24), p1d(208, 67, 222, 222, 32));
        let b = Prefix2D::new(p1d(181, 7, 20, 6, 32), p1d(208, 67, 222, 0, 24));
        let glb = a.glb(&b).unwrap();
        assert_eq!(
            glb,
            Prefix2D::new(p1d(181, 7, 20, 6, 32), p1d(208, 67, 222, 222, 32))
        );
        // Incompatible sources -> no glb.
        let c = Prefix2D::new(p1d(10, 0, 0, 0, 8), p1d(208, 67, 222, 0, 24));
        assert_eq!(a.glb(&c), None);
    }

    #[test]
    fn contains_addresses() {
        let p = Prefix2D::new(p1d(181, 0, 0, 0, 8), Prefix1D::root());
        assert!(p.contains(
            u32::from_be_bytes([181, 99, 1, 2]),
            u32::from_be_bytes([8, 8, 8, 8])
        ));
        assert!(!p.contains(
            u32::from_be_bytes([182, 99, 1, 2]),
            u32::from_be_bytes([8, 8, 8, 8])
        ));
    }
}
