//! Differential tests of the PR 8 incremental freeze path.
//!
//! The contract under test: maintaining a [`DeltaWindow`] by applying every
//! [`freeze_delta`](WindowQuery::freeze_delta) patch in call order answers
//! **bit-for-bit** the same queries as the [`FrozenWindow`] a full
//! [`freeze`](WindowQuery::freeze) would have produced at the same instant —
//! estimates, heavy-hitter sets *including order*, untracked estimates,
//! stream positions and error bounds. Exercised across window rotations,
//! closed-form `skip(n)` (including whole-window clears), evictions and
//! backward-shift deletions, for Memento (τ < 1), WCSS (τ = 1), the exact
//! window and Space Saving.

use memento::sketches::SpaceSaving;
use memento::traits::SlidingWindowEstimator;
use memento::{DeltaWindow, FrozenWindow, WindowQuery};
use proptest::prelude::*;

/// Key universe shared by all generators: small enough that per-checkpoint
/// full-universe estimate comparison is cheap, large enough to force
/// eviction and overflow churn in the tiny summaries below.
const UNIVERSE: u64 = 40;

/// One step of a generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Record one packet of the flow.
    Update(u64),
    /// Advance the window over `n` foreign packets (closed-form skip).
    Skip(u64),
}

/// Decodes generated `(key, kind)` pairs into a workload: one in nine steps
/// becomes a skip (length derived from the key, up to `max_skip`), the rest
/// record the key. Kept as a decode step because the vendored proptest
/// stand-in has no `prop_map`.
fn decode_ops(raw: &[(u64, u64)], max_skip: u64) -> Vec<Op> {
    raw.iter()
        .map(|&(key, kind)| {
            if kind == 0 {
                Op::Skip((key * 41 + kind) % max_skip + 1)
            } else {
                Op::Update(key)
            }
        })
        .collect()
}

/// Asserts the delta-maintained view equals a fresh full freeze, bit for
/// bit, on every observable query.
fn assert_bitwise_equal(delta: &DeltaWindow<u64>, full: &FrozenWindow<u64>, at: usize) {
    for key in 0..UNIVERSE {
        assert_eq!(
            delta.estimate(&key).to_bits(),
            full.estimate(&key).to_bits(),
            "estimate diverges for key {key} at op {at}: delta {} full {}",
            delta.estimate(&key),
            full.estimate(&key),
        );
    }
    assert_eq!(
        delta.untracked_estimate().to_bits(),
        full.untracked_estimate().to_bits(),
        "untracked estimate diverges at op {at}"
    );
    assert_eq!(delta.processed(), full.processed(), "position at op {at}");
    assert_eq!(
        delta.error_bound().to_bits(),
        full.error_bound().to_bits(),
        "error bound at op {at}"
    );
    // Heavy hitters: the full list at several thresholds must match
    // element-wise — same keys, same bit patterns, same ORDER (this is what
    // exercises the tie-breaking ranks).
    for threshold in [0.0, 1.0, 30.0, 1_000.0] {
        let d = delta.heavy_hitters(threshold);
        let f = full.heavy_hitters(threshold);
        assert_eq!(
            d.len(),
            f.len(),
            "hh cardinality at threshold {threshold}, op {at}"
        );
        for (i, ((dk, dv), (fk, fv))) in d.iter().zip(&f).enumerate() {
            assert_eq!(
                (dk, dv.to_bits()),
                (fk, fv.to_bits()),
                "hh[{i}] diverges at threshold {threshold}, op {at}"
            );
        }
    }
}

/// Drives an estimator through the workload, checkpointing every
/// `checkpoint_every` ops: apply the incremental patch to the persistent
/// `DeltaWindow`, take a full freeze, compare bit-for-bit.
fn run_differential<E: SlidingWindowEstimator<u64>>(
    est: &mut E,
    ops: &[Op],
    checkpoint_every: usize,
) {
    let mut delta = DeltaWindow::empty(est.name());
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Update(key) => est.update(key),
            Op::Skip(n) => est.skip(n),
        }
        if i % checkpoint_every == 0 {
            delta.apply(&est.freeze_delta());
            assert_bitwise_equal(&delta, &est.freeze(), i);
        }
    }
    delta.apply(&est.freeze_delta());
    assert_bitwise_equal(&delta, &est.freeze(), ops.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Memento (τ < 1): geometric sampling, overflow retirement, frame
    /// flushes and closed-form skips — the skip bound exceeds the window so
    /// whole-structure clears (rebuild patches) are reachable.
    #[test]
    fn memento_delta_freeze_matches_full_freeze(
        raw in prop::collection::vec((0u64..UNIVERSE, 0u64..9), 200..700),
        window in 64usize..300,
    ) {
        let ops = decode_ops(&raw, 400);
        let mut est = memento::Memento::new(32, window, 0.25, 42);
        run_differential(&mut est, &ops, 37);
    }

    /// WCSS (τ = 1, deterministic) with deliberately few counters: constant
    /// summary eviction plus overflow-table removals exercising the
    /// backward-shift deletion journal.
    #[test]
    fn wcss_delta_freeze_matches_full_freeze(
        raw in prop::collection::vec((0u64..UNIVERSE, 0u64..9), 200..700),
        window in 48usize..200,
    ) {
        let ops = decode_ops(&raw, 300);
        let mut est = memento::Wcss::new(8, window);
        run_differential(&mut est, &ops, 23);
    }

    /// Exact windows: per-key removal on expiry, whole-ring clears on big
    /// skips, table growth (all-dirty rebuilds).
    #[test]
    fn exact_delta_freeze_matches_full_freeze(
        raw in prop::collection::vec((0u64..UNIVERSE, 0u64..9), 200..700),
        window in 32usize..256,
    ) {
        let ops = decode_ops(&raw, 500);
        let mut est = memento::sketches::ExactWindow::new(window);
        run_differential(&mut est, &ops, 29);
    }
}

/// Space Saving (interval semantics, `skip` is a no-op): evictions at a
/// tiny capacity plus explicit flushes, which must degrade the next patch
/// to a rebuild.
#[test]
fn space_saving_delta_freeze_matches_full_freeze() {
    let mut est: SpaceSaving<u64> = SpaceSaving::new(8);
    let mut delta = DeltaWindow::empty(WindowQuery::name(&est));
    for round in 0..6 {
        for i in 0..500u64 {
            // Skewed keys so the summary churns through its 8 slots.
            let key = (i * i * (round + 1)) % UNIVERSE;
            SlidingWindowEstimator::update(&mut est, key);
            if i % 61 == 0 {
                delta.apply(&est.freeze_delta());
                assert_bitwise_equal(&delta, &est.freeze(), (round * 500 + i) as usize);
            }
        }
        // Interval boundary: everything resets; the next patch must rebuild.
        est.flush();
        delta.apply(&est.freeze_delta());
        assert_bitwise_equal(&delta, &est.freeze(), usize::MAX);
    }
}

/// The provided (journal-free) `freeze_delta` always rebuilds: applying it
/// to an empty `DeltaWindow` must reproduce the instance. `FrozenWindow`
/// itself has no native override, so it exercises the default path.
#[test]
fn default_freeze_delta_rebuilds_faithfully() {
    let mut est = memento::Wcss::new(16, 100);
    for i in 0..250u64 {
        est.update(i % 9);
    }
    let mut frozen = WindowQuery::freeze(&est);
    let patch = frozen.freeze_delta();
    assert!(patch.rebuild, "default impl must rebuild");
    let mut delta = DeltaWindow::empty(frozen.name());
    delta.apply(&patch);
    assert_bitwise_equal(&delta, &frozen, 0);
}
