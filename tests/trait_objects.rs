//! Trait-object smoke test: every sliding-window estimator in the workspace
//! runs behind `Box<dyn SlidingWindowEstimator<u64>>` over one shared trace
//! and honours its own advertised error bound, and every HHH algorithm runs
//! behind `Box<dyn HhhAlgorithm<SrcHierarchy>>` and reports the planted
//! heavy subnet.

use memento::core::traits::{HhhAlgorithm, SlidingWindowEstimator};
use memento::sketches::ExactWindow;
use memento::{
    ExactWindowHhh, HMemento, Memento, Mst, Prefix1D, Rhhh, SrcHierarchy, TraceGenerator,
    TracePreset, Wcss, WindowMst,
};

#[test]
fn estimator_trait_objects_honour_their_error_bounds() {
    let window = 20_000;
    let counters = 512;

    let mut estimators: Vec<Box<dyn SlidingWindowEstimator<u64>>> = vec![
        Box::new(Memento::new(counters, window, 1.0 / 8.0, 3)),
        Box::new(Wcss::new(counters, window)),
        Box::new(ExactWindow::new(window)),
    ];
    let mut oracle = ExactWindow::new(window);

    let mut trace = TraceGenerator::new(TracePreset::datacenter(), 17);
    let packets: Vec<u64> = (0..3 * window)
        .map(|_| trace.next_packet().flow())
        .collect();

    for chunk in packets.chunks(4_096) {
        for est in &mut estimators {
            est.update_batch(chunk);
        }
        for &flow in chunk {
            oracle.add(flow);
        }
    }

    // Every estimator saw every packet...
    for est in &estimators {
        assert_eq!(
            est.processed(),
            packets.len() as u64,
            "{} lost packets",
            est.name()
        );
        assert!(est.space_bytes() > 0, "{} reports no memory", est.name());
    }

    // ...and estimates the window's clearly-heavy flows within its own bound.
    let heavy: Vec<(u64, u64)> = oracle.heavy_hitters((0.01 * window as f64) as u64);
    assert!(heavy.len() >= 3, "trace produced too few heavy flows");
    for est in &estimators {
        let bound = est.error_bound();
        assert!(bound.is_finite(), "{} has no finite bound", est.name());
        for &(flow, real) in &heavy {
            let err = (est.estimate(&flow) - real as f64).abs();
            assert!(
                err <= bound,
                "{}: flow {flow:x} estimate off by {err}, bound {bound}",
                est.name()
            );
        }
        // The generic heavy-hitters query must surface the top flow.
        let top = heavy[0].0;
        let reported = est.heavy_hitters(0.5 * heavy[0].1 as f64);
        assert!(
            reported.iter().any(|(k, _)| *k == top),
            "{} missed the top flow",
            est.name()
        );
    }
}

#[test]
fn hhh_trait_objects_report_the_planted_subnet() {
    let window = 15_000;
    let hier = SrcHierarchy;

    let mut algorithms: Vec<Box<dyn HhhAlgorithm<SrcHierarchy>>> = vec![
        Box::new(HMemento::new(hier, 2_048, window, 0.5, 0.01, 5)),
        Box::new(WindowMst::new(hier, 512, window)),
        Box::new(Mst::new(hier, 512)),
        Box::new(Rhhh::new(hier, 512, 0.5, 0.01, 5)),
        Box::new(ExactWindowHhh::new(hier, window)),
    ];

    // 40% of traffic comes from 77.0.0.0/8, the rest is scattered.
    let mut trace = TraceGenerator::new(TracePreset::tiny(), 23);
    for i in 0..window as u32 {
        let src = if i % 5 < 2 {
            u32::from_be_bytes([77, (i % 251) as u8, (i % 13) as u8, (i % 7) as u8])
        } else {
            trace.next_packet().src | 0x0100_0000
        };
        for alg in &mut algorithms {
            alg.update(src);
        }
    }

    let heavy = Prefix1D::new(u32::from_be_bytes([77, 0, 0, 0]), 8);
    for alg in &algorithms {
        assert!(alg.space_bytes() > 0, "{} reports no memory", alg.name());
        let output = alg.output(0.2);
        assert!(
            output.contains(&heavy),
            "{} missed the planted /8; output = {output:?}",
            alg.name()
        );
    }
}
