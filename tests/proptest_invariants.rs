//! Cross-crate property-based tests on the paper's core invariants.

use std::collections::HashMap;

use memento::hierarchy::{exact_hhh, Hierarchy};
use memento::sketches::ExactWindow;
use memento::traits::SlidingWindowEstimator;
use memento::WindowQuery;
use memento::{HMemento, Memento, SrcHierarchy, Wcss};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// WCSS (τ = 1): the estimate never undershoots the exact window count
    /// and overshoots by at most 4W/k, for arbitrary streams and windows.
    #[test]
    fn wcss_error_bound_holds(
        stream in prop::collection::vec(0u64..40, 200..3000),
        window in 64usize..512,
        counters in 16usize..128,
    ) {
        let mut wcss = Wcss::new(counters, window);
        let mut exact = ExactWindow::new(window);
        for &x in &stream {
            wcss.update(x);
            exact.add(x);
        }
        let bound = 4.0 * window as f64 / counters as f64;
        for flow in 0u64..40 {
            let est = wcss.estimate(&flow);
            let real = exact.query(&flow) as f64;
            prop_assert!(est + 1e-9 >= real, "undershoot: flow {} est {} real {}", flow, est, real);
            prop_assert!(est - real <= bound + 1.0,
                "overshoot beyond bound: flow {} est {} real {} bound {}", flow, est, real, bound);
        }
    }

    /// Memento's bounds are consistent for any τ: lower ≤ upper, and the
    /// upper bound never falls below the exact count (one-sided error).
    #[test]
    fn memento_bounds_are_ordered_and_one_sided(
        stream in prop::collection::vec(0u64..20, 200..2000),
        window in 64usize..256,
        tau_inv in 1u32..8,
    ) {
        let tau = 1.0 / tau_inv as f64;
        let mut memento = Memento::new(32, window, tau, 7);
        let mut exact = ExactWindow::new(window);
        for &x in &stream {
            memento.update(x);
            exact.add(x);
        }
        for flow in 0u64..20 {
            let lo = memento.lower_bound(&flow);
            let hi = memento.upper_bound(&flow);
            prop_assert!(lo <= hi + 1e-9, "bounds inverted for {}", flow);
            if tau_inv == 1 {
                prop_assert!(hi + 1e-9 >= exact.query(&flow) as f64,
                    "tau=1 upper bound below exact for {}", flow);
            }
        }
    }

    /// H-Memento's coverage property (Definition 4.2): for every prefix left
    /// out of the output set P, its *true* conditioned frequency with respect
    /// to P stays below the threshold — up to the sampling slack the
    /// algorithm itself budgets for (the guarantee is probabilistic with
    /// confidence 1−δ; the extra slack makes the check deterministic in
    /// practice).
    #[test]
    fn h_memento_coverage_property(
        raw in prop::collection::vec((0u8..4, 0u8..4, 0u8..8), 400..1500),
        theta_pct in 10u32..30,
    ) {
        use memento::hierarchy::{conditioned_frequency_exact, prefix_frequencies};
        let hier = SrcHierarchy;
        let items: Vec<u32> = raw
            .iter()
            .map(|&(b, c, d)| u32::from_be_bytes([10, b * 16, c, d]))
            .collect();
        let window = items.len();
        let theta = theta_pct as f64 / 100.0;
        let mut hm = HMemento::new(hier, 4 * window.max(64), window, 1.0, 0.01, 3);
        for &it in &items {
            hm.update(it);
        }
        let output = hm.output(theta);
        let threshold = theta * window as f64;
        let allowance = threshold + 2.0 * hm.sampling_slack();
        for q in prefix_frequencies(&hier, items.iter().copied()).keys() {
            if !output.contains(q) {
                let c = conditioned_frequency_exact(&hier, &items, q, &output) as f64;
                prop_assert!(
                    c < allowance,
                    "coverage violated: {:?} has conditioned frequency {} vs threshold {} (+slack {})",
                    q, c, threshold, allowance - threshold
                );
            }
        }
        // And the output is never empty when a single source dominates.
        let exact = exact_hhh(&hier, &items, threshold);
        if !exact.is_empty() {
            prop_assert!(!output.is_empty(), "exact HHHs exist but output is empty");
        }
    }

    /// `update_batch` is *exactly* equivalent to repeated `update` on the
    /// deterministic paths (WCSS = Memento with τ = 1, and the exact window
    /// counter), for arbitrary streams and arbitrary batch splits.
    #[test]
    fn update_batch_equals_repeated_update_on_deterministic_paths(
        stream in prop::collection::vec(0u64..30, 50..1500),
        window in 32usize..256,
        counters in 8usize..64,
        chunk in 1usize..97,
    ) {
        // WCSS driven per-packet vs. in arbitrary chunks.
        let mut one_by_one = Wcss::new(counters, window);
        let mut batched = Wcss::new(counters, window);
        for &x in &stream {
            SlidingWindowEstimator::update(&mut one_by_one, x);
        }
        for part in stream.chunks(chunk) {
            batched.update_batch(part);
        }
        prop_assert_eq!(
            WindowQuery::processed(&one_by_one),
            WindowQuery::processed(&batched)
        );
        for flow in 0u64..30 {
            prop_assert_eq!(
                one_by_one.estimate(&flow).to_bits(),
                batched.estimate(&flow).to_bits(),
                "WCSS batch/per-packet estimates diverge for flow {}", flow
            );
        }

        // Exact window: the provided (default) batch path.
        let mut exact_one: ExactWindow<u64> = ExactWindow::new(window);
        let mut exact_batch: ExactWindow<u64> = ExactWindow::new(window);
        for &x in &stream {
            SlidingWindowEstimator::update(&mut exact_one, x);
        }
        for part in stream.chunks(chunk) {
            exact_batch.update_batch(part);
        }
        for flow in 0u64..30 {
            prop_assert_eq!(exact_one.query(&flow), exact_batch.query(&flow));
        }
    }

    /// The geometric-skip batch path preserves Memento's expected Full-update
    /// rate τ within statistical tolerance, independent of how the stream is
    /// split into batches, and slides the window identically (processed
    /// counts always match; frame/block positions are exercised by the
    /// deterministic test above).
    #[test]
    fn memento_batch_path_preserves_full_update_rate(
        tau_exp in 1u32..7,
        chunk in 1usize..613,
        seed in 0u64..1000,
    ) {
        let tau = 2f64.powi(-(tau_exp as i32));
        let n = 60_000usize;
        let keys: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
        let mut memento: Memento<u64> = Memento::new(64, 8_000, tau, seed);
        for part in keys.chunks(chunk) {
            memento.update_batch(part);
        }
        prop_assert_eq!(Memento::processed(&memento), n as u64);
        let expected = tau * n as f64;
        // Binomial std is sqrt(n·τ·(1−τ)); allow 5 sigma plus slack for the
        // discretized geometric draws.
        let tolerance = 5.0 * (n as f64 * tau * (1.0 - tau)).sqrt() + 0.02 * expected + 3.0;
        let got = memento.full_updates() as f64;
        prop_assert!(
            (got - expected).abs() <= tolerance,
            "full updates {} too far from expected {} (tau {}, chunk {}, tol {})",
            got, expected, tau, chunk, tolerance
        );
    }

    /// The HHH set never contains two prefixes where the deeper one fully
    /// explains the shallower one's conditioned frequency (structural sanity
    /// of the conditioned-frequency computation on exact oracles).
    #[test]
    fn exact_hhh_set_is_minimal_per_level(
        raw in prop::collection::vec((0u8..3, 0u8..3), 200..800),
        theta_pct in 15u32..40,
    ) {
        let hier = SrcHierarchy;
        let items: Vec<u32> = raw
            .iter()
            .map(|&(b, d)| u32::from_be_bytes([20, b, 0, d]))
            .collect();
        let theta = theta_pct as f64 / 100.0;
        let threshold = theta * items.len() as f64;
        let hhh = exact_hhh(&hier, &items, threshold);
        // Exact per-prefix frequencies.
        let mut freq: HashMap<_, u64> = HashMap::new();
        for &it in &items {
            for i in 0..hier.h() {
                *freq.entry(hier.prefix_at(it, i)).or_insert(0) += 1;
            }
        }
        for p in &hhh {
            // Every reported prefix carries at least the threshold worth of
            // traffic in total (its conditioned frequency is a lower bound of
            // its plain frequency).
            prop_assert!(
                freq[p] as f64 >= threshold,
                "reported prefix {:?} has total frequency {} below threshold {}",
                p, freq[p], threshold
            );
        }
    }
}
