//! PR 9 differential time-replay suite: the time plane's correctness claim
//! — `advance_to(t)` answers bit-for-bit equal to the count-based path on
//! the computed rotation schedule — proven for Memento (any τ), WCSS and
//! the exact window, single-device and sharded at N ∈ {1, 2, 4}, plus the
//! clock-policy edge cases (clamp-to-last, idle-gap wholesale clears,
//! grain-boundary off-by-ones) and the PR 8 residual (`freeze_delta`
//! across a time-advance that degrades the journal to a rebuild).
//!
//! PR 10 extends the suite with the chunked-ingest differentials: the
//! run-structured `record_timed` (one clock consult per same-grain run)
//! against per-packet `record_at`, and the engine-level
//! `ShardedEstimator::advance_to` against the `TimedWindow` wrapper.

use memento::sketches::{ExactTimedWindow, ExactWindow};
use memento::traits::SlidingWindowEstimator;
use memento::{
    DeltaWindow, GrainClock, GrainMap, Memento, ShardedEstimator, TimedWindow, Wcss, WindowQuery,
};
use proptest::prelude::*;

/// Key universe for full-sweep estimate comparison.
const UNIVERSE: u64 = 24;

/// Case count, honoring the nightly `time-fuzz` job's `PROPTEST_CASES`
/// (the vendored proptest stand-in has no built-in env support, so the
/// suite reads it directly; the PR-gating default stays low).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Decodes generated `(kind, key)` pairs into a monotone timestamped
/// packet stream: mostly bursts sharing a timestamp, some sub-grain steps,
/// some gaps straddling grain boundaries, and rare multi-grain jumps that
/// can outrun the whole window.
fn decode_timed(raw: &[(u64, u64)], grain_span: u64) -> Vec<(u64, u64)> {
    let mut t = 0u64;
    raw.iter()
        .map(|&(kind, key)| {
            let gap = match kind {
                0..=4 => 0,                       // burst: duplicate timestamps
                5 | 6 => 1 + key % 3,             // sub-grain steps
                7 | 8 => grain_span / 2 + key,    // around a grain boundary
                _ => grain_span * (key % 40 + 1), // multi-grain / idle jumps
            };
            t += gap;
            (t, key)
        })
        .collect()
}

/// Drives `est` over the packets on the manual rotation schedule: an
/// independent [`GrainClock`] replica computes each packet's rotations,
/// executed via the closed-form `skip(n)` before the per-packet update —
/// the count-based reference path of the differential.
fn drive_skip_schedule<E: SlidingWindowEstimator<u64>>(
    est: &mut E,
    map: GrainMap,
    packets: &[(u64, u64)],
) {
    let mut clock = GrainClock::new(map);
    let mut position = est.processed();
    for &(t, key) in packets {
        let n = clock.observe(t, position);
        if n > 0 {
            est.skip(n);
            position += n;
        }
        est.update(key);
        position += 1;
    }
}

/// Same schedule, but every rotation is `n` per-packet `window_update()`
/// calls instead of one closed-form skip (RNG-free either way, so this
/// leg is bit-for-bit at any τ).
fn drive_window_updates(est: &mut Memento<u64>, map: GrainMap, packets: &[(u64, u64)]) {
    let mut clock = GrainClock::new(map);
    let mut position = Memento::processed(est);
    for &(t, key) in packets {
        let n = clock.observe(t, position);
        for _ in 0..n {
            est.window_update();
        }
        position += n;
        est.update(key);
        position += 1;
    }
}

/// Full-universe bit-for-bit estimate comparison.
fn assert_estimates_equal<A, B>(a: &A, b: &B, context: &str)
where
    A: WindowQuery<u64> + ?Sized,
    B: WindowQuery<u64> + ?Sized,
{
    for key in 0..UNIVERSE {
        assert_eq!(
            a.estimate(&key).to_bits(),
            b.estimate(&key).to_bits(),
            "{context}: estimates diverge for key {key}: {} vs {}",
            a.estimate(&key),
            b.estimate(&key),
        );
    }
}

/// A labelled engine constructor for the engine-vs-wrapper differential
/// test, which builds each engine twice (once bare, once wrapped).
type EngineCtor = (&'static str, Box<dyn Fn() -> ShardedEstimator<u64>>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    /// Memento, any τ: `advance_to(t)` ≡ the closed-form `skip(n)` schedule
    /// ≡ `n` per-packet `window_update`s, bit-for-bit on estimates and
    /// positions. (Rotations consume no randomness on any of the three
    /// paths, and all record legs go through the same per-packet `update`,
    /// so the RNG streams stay aligned even at τ < 1.)
    #[test]
    fn memento_advance_equals_skip_equals_window_updates(
        raw in prop::collection::vec((0u64..10, 0u64..UNIVERSE), 100..1_200),
        tau_exp in 0u32..3,
        grains_exp in 0u32..4,
    ) {
        let window = 700usize;
        let tau = 0.5f64.powi(tau_exp as i32);
        let grains = 1u64 << (2 * grains_exp); // 1, 4, 16, 64
        let map = GrainMap::new(640, window as u64, grains);
        let packets = decode_timed(&raw, map.grain_span());

        let mut timed = TimedWindow::new(Memento::new(24, window, tau, 99), map);
        for &(t, key) in &packets {
            timed.record_at(key, t);
        }
        let mut skipped = Memento::new(24, window, tau, 99);
        drive_skip_schedule(&mut skipped, map, &packets);
        let mut stepped = Memento::new(24, window, tau, 99);
        drive_window_updates(&mut stepped, map, &packets);

        prop_assert_eq!(timed.position(), Memento::processed(&skipped));
        prop_assert_eq!(Memento::processed(&skipped), Memento::processed(&stepped));
        assert_estimates_equal(&timed, &skipped, "timed vs skip schedule");
        assert_estimates_equal(&skipped, &stepped, "skip vs window_update");
    }

    /// WCSS (τ = 1): the same three-way equivalence on the deterministic
    /// reference algorithm, including the batched `record_timed` ingest.
    #[test]
    fn wcss_advance_equals_skip_equals_window_updates(
        raw in prop::collection::vec((0u64..10, 0u64..UNIVERSE), 100..1_200),
        chunk in 1usize..300,
        grains_exp in 0u32..4,
    ) {
        let window = 500usize;
        let grains = 1u64 << (2 * grains_exp);
        let map = GrainMap::new(480, window as u64, grains);
        let packets = decode_timed(&raw, map.grain_span());

        let mut timed = TimedWindow::new(Wcss::new(16, window), map);
        for part in packets.chunks(chunk) {
            timed.record_timed(part);
        }
        let mut skipped = Wcss::new(16, window);
        drive_skip_schedule(&mut skipped, map, &packets);
        // WCSS is Memento at τ = 1 (estimates are RNG-independent there),
        // so the window_update leg runs on the underlying algorithm.
        let mut stepped = Memento::new(16, window, 1.0, 5);
        drive_window_updates(&mut stepped, map, &packets);

        prop_assert_eq!(timed.position(), Wcss::processed(&skipped));
        assert_estimates_equal(&timed, &skipped, "timed vs skip schedule");
        assert_estimates_equal(&skipped, &stepped, "skip vs window_update");
    }

    /// Exact window: `advance_to(t)` ≡ the skip schedule (position-stamped
    /// eviction) for arbitrary streams — and when the per-grain position
    /// budget covers the stream's peak per-grain rate (the provisioning
    /// rule the ACL rate limiter uses; under overload the count capacity
    /// binds instead, by design), the grained answers sandwich the true
    /// timestamp-eviction oracle within the documented quantization slop:
    /// at least the count over the last `D − grain_span` ticks, at most
    /// the count over the last `D + 2·grain_span` ticks.
    #[test]
    fn exact_advance_equals_skip_schedule_and_bounds_the_oracle(
        raw in prop::collection::vec((0u64..10, 0u64..UNIVERSE), 100..1_000),
        grains_exp in 0u32..4,
    ) {
        let grains = 1u64 << (2 * grains_exp);
        let ticks = 512u64;
        let probe = GrainMap::new(ticks, 1, grains);
        let span = probe.grain_span();
        let packets = decode_timed(&raw, span);

        // Provision the position budget for the peak per-grain record
        // count so bursts never overrun the schedule.
        let mut per_grain = std::collections::HashMap::new();
        for &(t, _) in &packets {
            *per_grain.entry(t / span).or_insert(0u64) += 1;
        }
        let peak = per_grain.values().copied().max().unwrap_or(1).max(1);
        let positions = probe.grains() * peak;
        let map = GrainMap::new(ticks, positions, grains);
        prop_assert_eq!(map.positions_per_grain(), peak);

        let window = positions as usize;
        let mut timed = TimedWindow::new(ExactWindow::<u64>::new(window), map);
        let mut oracle_lo = ExactTimedWindow::new((ticks - span).max(1));
        let mut oracle_hi = ExactTimedWindow::new(ticks + 2 * span);
        for &(t, key) in &packets {
            timed.record_at(key, t);
            oracle_lo.add_at(key, t);
            oracle_hi.add_at(key, t);
        }
        let mut skipped = ExactWindow::<u64>::new(window);
        drive_skip_schedule(&mut skipped, map, &packets);

        assert_estimates_equal(&timed, &skipped, "timed vs skip schedule");
        for key in 0..UNIVERSE {
            let grained = timed.inner().query(&key);
            if ticks > span {
                prop_assert!(
                    grained >= oracle_lo.query(&key),
                    "grained window expired early for key {}: {} < {} (g {})",
                    key, grained, oracle_lo.query(&key), map.grains()
                );
            }
            prop_assert!(
                grained <= oracle_hi.query(&key),
                "grained window retained key {} beyond two grains: {} > {} (g {})",
                key, grained, oracle_hi.query(&key), map.grains()
            );
        }
    }

    /// Clock policy: arbitrary (freely non-monotone, duplicate-laden,
    /// far-backward) timestamp streams never panic, every inversion is
    /// counted, and the answers are bit-for-bit those of the same stream
    /// with timestamps pre-clamped to the running maximum.
    #[test]
    fn non_monotone_timestamps_clamp_to_last_and_never_panic(
        raw in prop::collection::vec((0u64..5_000, 0u64..UNIVERSE), 50..800),
    ) {
        let map = GrainMap::new(300, 600, 8);
        let mut wild = TimedWindow::new(ExactWindow::<u64>::new(600), map);
        let mut tamed = TimedWindow::new(ExactWindow::<u64>::new(600), map);
        let mut running_max = 0u64;
        let mut inversions = 0u64;
        for (i, &(t, key)) in raw.iter().enumerate() {
            wild.record_at(key, t);
            if i > 0 && t < running_max {
                inversions += 1;
            }
            running_max = running_max.max(t);
            tamed.record_at(key, running_max);
        }
        prop_assert_eq!(wild.clock().clamped(), inversions);
        prop_assert_eq!(wild.clock().last_tick(), tamed.clock().last_tick());
        prop_assert_eq!(wild.position(), tamed.position());
        assert_estimates_equal(&wild, &tamed, "wild vs pre-clamped clock");
    }

    /// PR 10 chunked ingest: `record_timed`'s run-structured loop (one
    /// clock consult per same-grain run, the tail handled by the hoisted
    /// in-grain fast path) is pinned two ways across grain geometries,
    /// chunk sizes, grain boundaries landing mid-chunk, and freely
    /// non-monotone timestamps (so the clamp path runs inside run tails,
    /// not just run heads):
    ///
    /// 1. τ = 1 (RNG-free): chunked `record_timed` ≡ per-packet
    ///    `record_at`, bit-for-bit on estimates, position, clamp
    ///    diagnostics and wholesale-clear counts.
    /// 2. τ < 1: chunked `record_timed` ≡ the pre-hoist per-packet
    ///    `observe` schedule fed through the same batch path — isolating
    ///    exactly what PR 10 changed (the clock consult), with the RNG
    ///    stream held identical. (Per-packet `record_at` draws the RNG
    ///    differently at τ < 1 by long-standing design; see
    ///    `record_timed`'s docs.)
    #[test]
    fn chunked_record_timed_equals_per_packet_record_at(
        raw in prop::collection::vec((0u64..12, 0u64..UNIVERSE), 100..1_200),
        chunk in 1usize..300,
        grains_exp in 0u32..4,
    ) {
        let window = 650usize;
        let grains = 1u64 << (2 * grains_exp);
        let map = GrainMap::new(620, window as u64, grains);
        // Monotone base stream, then re-introduced inversions: some stay
        // inside the current grain (tail clamps), some cross backwards
        // over a grain boundary (head clamps).
        let packets: Vec<(u64, u64)> = decode_timed(&raw, map.grain_span())
            .into_iter()
            .enumerate()
            .map(|(i, (t, key))| {
                if i % 9 == 8 {
                    (t.saturating_sub(1 + key * 7 % (2 * map.grain_span())), key)
                } else {
                    (t, key)
                }
            })
            .collect();

        // Leg 1: τ = 1, chunked vs per-packet record_at.
        let mut chunked = TimedWindow::new(Wcss::new(20, window), map);
        for part in packets.chunks(chunk) {
            chunked.record_timed(part);
        }
        let mut per_packet = TimedWindow::new(Wcss::new(20, window), map);
        for &(t, key) in &packets {
            per_packet.record_at(key, t);
        }
        prop_assert_eq!(chunked.position(), per_packet.position());
        prop_assert_eq!(chunked.clock().last_tick(), per_packet.clock().last_tick());
        prop_assert_eq!(chunked.clock().clamped(), per_packet.clock().clamped());
        prop_assert_eq!(
            chunked.whole_window_advances(),
            per_packet.whole_window_advances()
        );
        assert_estimates_equal(&chunked, &per_packet, "chunked vs per-packet (τ = 1)");

        // Leg 2: τ < 1, chunked vs the per-packet observe schedule through
        // identical update_batch_positioned calls (same chunking, so the
        // persistent geometric-skip state stays aligned).
        let mut memento_chunked = TimedWindow::new(Memento::new(20, window, 0.25, 31), map);
        for part in packets.chunks(chunk) {
            memento_chunked.record_timed(part);
        }
        let mut manual = Memento::new(20, window, 0.25, 31);
        let mut clock = GrainClock::new(map);
        let mut position = Memento::processed(&manual);
        for part in packets.chunks(chunk) {
            let mut gaps = Vec::with_capacity(part.len());
            let mut keys = Vec::with_capacity(part.len());
            for &(t, key) in part {
                let n = clock.observe(t, position);
                gaps.push(n);
                keys.push(key);
                position += n + 1;
            }
            manual.update_batch_positioned(&gaps, &keys);
        }
        prop_assert_eq!(memento_chunked.position(), position);
        prop_assert_eq!(memento_chunked.clock().last_tick(), clock.last_tick());
        prop_assert_eq!(memento_chunked.clock().clamped(), clock.clamped());
        assert_estimates_equal(
            &memento_chunked,
            &manual,
            "chunked vs per-packet observe schedule (τ < 1)",
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(4)))]

    /// PR 10 engine time plane: a `ShardedEstimator` built with
    /// `with_grain_clock` and driven by `advance_to(t)` + `update_batch`
    /// answers bit-for-bit like the same engine wrapped in a `TimedWindow`
    /// and fed `record_batch_at` — exact and WCSS at N ∈ {1, 2, 4}, with
    /// non-monotone batch timestamps exercising the clamp on both sides.
    #[test]
    fn engine_advance_to_matches_timed_window_wrapper(
        raw in prop::collection::vec((0u64..10, 0u64..UNIVERSE), 60..400),
        grains_exp in 0u32..3,
    ) {
        let window = 800usize;
        let grains = 1u64 << (2 * grains_exp);
        let map = GrainMap::new(560, window as u64, grains);
        let packets = decode_timed(&raw, map.grain_span());
        let batches: Vec<(u64, Vec<u64>)> = packets
            .chunks(3)
            .enumerate()
            .map(|(i, part)| {
                let t = if i % 7 == 6 {
                    part[0].0.saturating_sub(map.grain_span() + 3)
                } else {
                    part[0].0
                };
                (t, part.iter().map(|&(_, k)| k).collect())
            })
            .collect();

        for shards in [1usize, 2, 4] {
            let engines: [EngineCtor; 2] = [
                ("exact", Box::new(move || ShardedEstimator::exact(shards, window))),
                ("wcss", Box::new(move || ShardedEstimator::wcss(shards, 16, window))),
            ];
            for (name, make) in &engines {
                let mut engine = make().with_grain_clock(map);
                let mut wrapped = TimedWindow::new(make(), map);
                for (t, keys) in &batches {
                    engine.advance_to(*t);
                    engine.update_batch(keys);
                    wrapped.record_batch_at(keys, *t);
                }
                let context = format!("{name}@{shards}");
                assert_estimates_equal(&engine, &wrapped, &context);
                let clock = &engine.grain_clocks().expect("clock configured")[0];
                prop_assert_eq!(clock.last_tick(), wrapped.clock().last_tick());
                prop_assert_eq!(clock.clamped(), wrapped.clock().clamped());
            }
        }
    }
}

/// The sharded engines at N ∈ {1, 2, 4}: replaying a timed trace through
/// `record_timed` (the router's gap-stamped `update_batch_positioned` fast
/// path) answers bit-for-bit like the same engine driven on the manual
/// rotation schedule through identical positioned calls — for the exact
/// window, WCSS, and Memento at τ < 1. The exact engines additionally
/// match the single-threaded timed reference, tying the sharded time plane
/// to ground truth.
#[test]
fn sharded_timed_replay_matches_positioned_schedule() {
    let window = 900usize;
    let map = GrainMap::new(450, window as u64, 16);
    let raw: Vec<(u64, u64)> = (0..4_000u64)
        .map(|i| (i * 7 % 10, i * 31 % UNIVERSE))
        .collect();
    let packets = decode_timed(&raw, map.grain_span());
    let chunk = 997usize;

    // Single-threaded exact reference on the same schedule.
    let mut reference = TimedWindow::new(ExactWindow::<u64>::new(window), map);
    for &(t, key) in &packets {
        reference.record_at(key, t);
    }

    /// One engine type through both drives: `record_timed` vs the manual
    /// clock replica issuing identical chunked positioned calls.
    fn run_one<E, F>(
        make: F,
        map: GrainMap,
        packets: &[(u64, u64)],
        chunk: usize,
        context: &str,
    ) -> TimedWindow<u64, E>
    where
        E: SlidingWindowEstimator<u64>,
        F: Fn() -> E,
    {
        let mut timed = TimedWindow::new(make(), map);
        for part in packets.chunks(chunk) {
            timed.record_timed(part);
        }
        let mut manual = make();
        let mut clock = GrainClock::new(map);
        let mut position = manual.processed();
        for part in packets.chunks(chunk) {
            let mut gaps = Vec::with_capacity(part.len());
            let mut keys = Vec::with_capacity(part.len());
            for &(t, key) in part {
                let n = clock.observe(t, position);
                gaps.push(n);
                keys.push(key);
                position += n + 1;
            }
            manual.update_batch_positioned(&gaps, &keys);
        }
        assert_eq!(
            timed.position(),
            position,
            "{context}: position mirror diverged"
        );
        assert_estimates_equal(
            &timed,
            &manual,
            &format!("{context}: timed vs positioned schedule"),
        );
        timed
    }

    for shards in [1usize, 2, 4] {
        let timed_exact = run_one(
            || ShardedEstimator::exact(shards, window),
            map,
            &packets,
            chunk,
            &format!("exact@{shards}"),
        );
        assert_estimates_equal(
            &timed_exact,
            &reference,
            &format!("exact@{shards}: sharded vs single-threaded"),
        );
        run_one(
            || ShardedEstimator::wcss(shards, 32, window),
            map,
            &packets,
            chunk,
            &format!("wcss@{shards}"),
        );
        run_one(
            || ShardedEstimator::memento(shards, 32, window, 0.25, 7),
            map,
            &packets,
            chunk,
            &format!("memento@{shards}"),
        );
    }
}

/// Idle gaps longer than the whole window must land on the O(1)
/// wholesale-clear path — observed through the `whole_window_advances`
/// hook (the time plane's `freeze_rounds`-style diagnostic counter) and
/// through the emptied state on both the grained window and the oracle.
#[test]
fn idle_gap_outrunning_the_ring_takes_the_wholesale_clear() {
    let map = GrainMap::new(100, 400, 8);
    let mut timed = TimedWindow::new(ExactWindow::<u64>::new(400), map);
    let mut oracle = ExactTimedWindow::new(100);
    for i in 0..300u64 {
        timed.record_at(i % 5, 10 + i % 3);
        oracle.add_at(i % 5, 10 + i % 3);
    }
    assert_eq!(timed.whole_window_advances(), 0);
    assert!(timed.estimate(&1) > 0.0);
    // Sleep for forty windows: one observation, ≥ W rotations, one clear.
    timed.advance_to(4_000);
    oracle.advance_to(4_000);
    assert_eq!(timed.whole_window_advances(), 1);
    assert_eq!(timed.estimate(&1), 0.0);
    assert_eq!(oracle.occupancy(), 0);
    // The cleared window keeps working: a fresh record is queryable.
    timed.record_at(7, 4_001);
    assert_eq!(timed.estimate(&7), 1.0);
}

/// Grain-boundary off-by-ones at `grains_per_window` ∈ {1, 8, 64}: with an
/// exactly divisible geometry, an entry recorded at the very start of a
/// grain is still present when the clock reaches `t + D` (expiry is never
/// early, at most one grain late) and gone one grain later.
#[test]
fn grain_boundary_off_by_ones_across_grain_counts() {
    for grains in [1u64, 8, 64] {
        let span = 16u64;
        let ticks = grains * span; // D, exactly divisible
        let positions = grains * 4; // W, exactly divisible: ppg = 4
        let map = GrainMap::new(ticks, positions, grains);
        assert_eq!(map.grain_span(), span);
        assert_eq!(map.positions_per_grain(), 4);

        let mut timed = TimedWindow::new(ExactWindow::<u64>::new(positions as usize), map);
        timed.record_at(42, 0);
        // One tick before a full window: always present.
        timed.advance_to(ticks - 1);
        assert_eq!(timed.estimate(&42), 1.0, "expired early at g = {grains}");
        // Exactly one window later: the quantized expiry may lag one grain,
        // so the entry is still (just) visible…
        timed.advance_to(ticks);
        assert_eq!(
            timed.estimate(&42),
            1.0,
            "quantized expiry ran early at g = {grains}"
        );
        // …and one grain past that it must be gone.
        timed.advance_to(ticks + span);
        assert_eq!(
            timed.estimate(&42),
            0.0,
            "expiry more than one grain late at g = {grains}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(6)))]

    /// PR 8 residual: maintaining a [`DeltaWindow`] by applying every
    /// `freeze_delta` patch stays bit-for-bit with a full freeze across
    /// time-advances — including advances whose rotations trigger the
    /// frame-flush / whole-structure-clear rebuild degradation of the
    /// journal (`skip` past the window), previously untested under the
    /// time plane.
    #[test]
    fn freeze_delta_survives_time_advance_rebuilds(
        raw in prop::collection::vec((0u64..10, 0u64..UNIVERSE), 150..600),
        tau_sel in 0u32..2,
    ) {
        let window = 180usize;
        // A coarse map (few grains over a short tick window) so routine
        // advances regularly rotate whole frames and idle jumps clear the
        // structure outright.
        let map = GrainMap::new(64, window as u64, 4);
        let packets = decode_timed(&raw, map.grain_span());
        let tau = if tau_sel == 0 { 1.0 } else { 0.25 };
        let mut timed = TimedWindow::new(Memento::new(16, window, tau, 5), map);
        let mut delta = DeltaWindow::empty(WindowQuery::name(&timed));
        for (i, &(t, key)) in packets.iter().enumerate() {
            timed.record_at(key, t);
            if i % 41 == 0 {
                delta.apply(&timed.freeze_delta());
                let full = WindowQuery::freeze(&timed);
                assert_estimates_equal(&delta, &full, "delta vs full freeze mid-stream");
                prop_assert_eq!(delta.processed(), full.processed());
            }
        }
        // A terminal idle gap past the whole window: the rebuild patch
        // after the wholesale clear must leave the delta view empty too.
        let quiet = timed.clock().last_tick() + 40 * map.window_ticks();
        timed.advance_to(quiet);
        delta.apply(&timed.freeze_delta());
        let full = WindowQuery::freeze(&timed);
        assert_estimates_equal(&delta, &full, "delta vs full freeze after idle clear");
        prop_assert_eq!(delta.processed(), full.processed());
        prop_assert!(timed.whole_window_advances() >= 1);
    }
}

/// Deterministic pin of the journal-invalidation path: a mid-size
/// time-advance whose rotations flush frames (without clearing the whole
/// structure) must degrade the next patch to a correct rebuild.
#[test]
fn freeze_delta_pins_frame_flush_rebuild_under_advance() {
    let window = 240usize;
    let map = GrainMap::new(120, window as u64, 8);
    let mut timed = TimedWindow::new(Wcss::new(12, window), map);
    let mut delta = DeltaWindow::empty(WindowQuery::name(&timed));
    for i in 0..400u64 {
        timed.record_at(i % 7, i / 4);
    }
    delta.apply(&timed.freeze_delta());
    assert_estimates_equal(&delta, &WindowQuery::freeze(&timed), "baseline");
    // Advance most of a window in one observation: enough rotations to
    // flush frames and invalidate the journal, not enough to clear.
    let t = timed.clock().last_tick() + map.window_ticks() - 2 * map.grain_span();
    timed.advance_to(t);
    assert!(
        timed.estimate(&1) > 0.0,
        "advance should not clear everything"
    );
    delta.apply(&timed.freeze_delta());
    assert_estimates_equal(
        &delta,
        &WindowQuery::freeze(&timed),
        "after frame-flush advance",
    );
    // And repeat across the wholesale clear for completeness.
    timed.advance_to(t + 50 * map.window_ticks());
    delta.apply(&timed.freeze_delta());
    assert_estimates_equal(
        &delta,
        &WindowQuery::freeze(&timed),
        "after wholesale clear",
    );
}
