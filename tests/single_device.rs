//! Cross-crate integration tests: single-device pipeline
//! (traces → Memento/WCSS/H-Memento → oracles).

use std::collections::HashMap;

use memento::baselines::{Mst, Rhhh, WindowMst};
use memento::sketches::ExactWindow;
use memento::{
    ExactWindowHhh, HMemento, Hierarchy, Memento, Prefix1D, SrcHierarchy, TraceGenerator,
    TracePreset, Wcss,
};

/// Memento (sampled) and WCSS (τ=1) must both track the exact sliding window
/// on a realistic synthetic trace, with WCSS strictly honouring its ε·W
/// bound and Memento staying close.
#[test]
fn memento_and_wcss_track_exact_window_on_synthetic_trace() {
    let window = 30_000;
    let counters = 512;
    let mut trace = TraceGenerator::new(TracePreset::datacenter(), 21);
    let mut memento = Memento::new(counters, window, 1.0 / 16.0, 2);
    let mut wcss = Wcss::new(counters, window);
    let mut exact = ExactWindow::new(window);

    for _ in 0..3 * window {
        let pkt = trace.next_packet();
        let flow = pkt.flow();
        memento.update(flow);
        wcss.update(flow);
        exact.add(flow);
    }

    let bound = 4.0 * window as f64 / counters as f64;
    let mut checked = 0;
    for (flow, real) in exact.heavy_hitters((0.002 * window as f64) as u64) {
        let w = wcss.estimate(&flow);
        assert!(w + 1e-9 >= real as f64, "WCSS undershoots flow {flow:x}");
        assert!(
            w - real as f64 <= bound,
            "WCSS error too large for {flow:x}: est {w}, real {real}"
        );
        let m = memento.estimate(&flow);
        // Sampled estimates carry extra noise; they must stay in the right
        // ballpark for flows above 0.2% of the window.
        assert!(
            (m - real as f64).abs() <= bound + 0.35 * real as f64 + 200.0,
            "Memento too far off for {flow:x}: est {m}, real {real}"
        );
        checked += 1;
    }
    assert!(checked >= 5, "trace produced too few heavy flows to check");
}

/// The heavy-hitter sets of Memento and the exact window must agree on
/// clearly-heavy flows (no false negatives above threshold, no phantom flows
/// far above it).
#[test]
fn heavy_hitter_sets_agree_with_ground_truth() {
    let window = 20_000;
    let mut trace = TraceGenerator::new(TracePreset::datacenter(), 4);
    let mut memento = Memento::new(1024, window, 0.25, 3);
    let mut exact = ExactWindow::new(window);
    for _ in 0..2 * window {
        let pkt = trace.next_packet();
        memento.update(pkt.flow());
        exact.add(pkt.flow());
    }
    let theta = 0.02;
    let threshold = theta * window as f64;
    let reported: HashMap<u64, f64> = memento.heavy_hitters(threshold).into_iter().collect();
    // No false negatives: every exact HH above threshold is reported.
    for (flow, real) in exact.heavy_hitters(threshold as u64) {
        assert!(
            reported.contains_key(&flow),
            "flow {flow:x} with {real} window packets missing from Memento's HH set"
        );
    }
    // No severe false positives: every reported flow has at least some
    // presence in the exact window (estimates are upper bounds, so small
    // flows may be slightly inflated but not conjured from nothing).
    for flow in reported.keys() {
        assert!(
            exact.query(flow) as f64 >= threshold * 0.1,
            "flow {flow:x} reported but nearly absent from the window"
        );
    }
}

/// Every HHH algorithm must satisfy the paper's *coverage* property against
/// ground truth: any exact HHH it does not report must be explained by the
/// set it does report (its residual conditioned frequency with respect to
/// that set stays below the threshold, up to the algorithm's own sampling
/// slack). The deterministic algorithms (Baseline, MST) get no slack.
#[test]
fn all_hhh_algorithms_find_the_heavy_subnets() {
    use memento::hierarchy::conditioned_frequency_exact;
    let window = 40_000;
    let hier = SrcHierarchy;
    let theta = 0.05;
    let mut trace = TraceGenerator::new(TracePreset::datacenter(), 31);

    let mut h_memento = HMemento::new(hier, 4_096, window, 0.5, 0.01, 5);
    let mut baseline = WindowMst::new(hier, 1_024, window);
    let mut mst = Mst::new(hier, 1_024);
    let mut rhhh = Rhhh::new(hier, 1_024, 0.5, 0.01, 5);
    let mut oracle = ExactWindowHhh::new(hier, window);

    let mut items = Vec::with_capacity(window);
    for _ in 0..window {
        let src = trace.next_packet().src;
        h_memento.update(src);
        baseline.update(src);
        mst.update(src);
        rhhh.update(src);
        oracle.update(src);
        items.push(src);
    }

    let exact = oracle.output(theta);
    assert!(
        !exact.is_empty(),
        "trace has no heavy subnets at theta={theta}"
    );
    let threshold = theta * window as f64;

    let check = |name: &str, output: &[Prefix1D], slack: f64| {
        assert!(!output.is_empty(), "{name} reported nothing");
        for p in &exact {
            if output.contains(p) {
                continue;
            }
            let residual = conditioned_frequency_exact(&hier, &items, p, output) as f64;
            assert!(
                residual < threshold + slack,
                "{name} missed exact HHH {p} whose residual w.r.t. its output is {residual} \
                 (threshold {threshold}, slack {slack})"
            );
        }
    };

    check(
        "H-Memento",
        &h_memento.output(theta),
        h_memento.sampling_slack(),
    );
    check("Baseline", &baseline.output(theta), 0.0);
    check("MST", &mst.output(theta), 0.0);
    check("RHHH", &rhhh.output(theta), rhhh.sampling_slack());
}

/// The sliding window must actually slide: a subnet that dominated an old
/// window disappears from the HHH set after enough new traffic, for both
/// H-Memento and the Baseline, while the interval MST (never reset) keeps it.
#[test]
fn window_algorithms_forget_but_interval_algorithms_remember() {
    let window = 10_000;
    let hier = SrcHierarchy;
    let heavy = Prefix1D::new(u32::from_be_bytes([200, 0, 0, 0]), 8);

    let mut h_memento = HMemento::new(hier, 2_048, window, 1.0, 0.01, 9);
    let mut baseline = WindowMst::new(hier, 512, window);
    let mut mst = Mst::new(hier, 512);

    // Phase 1: subnet 200/8 dominates.
    for i in 0..window {
        let src = u32::from_be_bytes([200, (i % 256) as u8, ((i / 256) % 256) as u8, 1]);
        h_memento.update(src);
        baseline.update(src);
        mst.update(src);
    }
    assert!(h_memento.output(0.2).contains(&heavy));
    assert!(baseline.output(0.2).contains(&heavy));

    // Phase 2: three windows of completely different traffic.
    let mut trace = TraceGenerator::new(TracePreset::tiny(), 13);
    for _ in 0..3 * window {
        let mut src = trace.next_packet().src;
        if src >> 24 == 200 {
            src ^= 0x0100_0000; // keep phase-2 traffic out of 200/8
        }
        h_memento.update(src);
        baseline.update(src);
        mst.update(src);
    }
    assert!(
        !h_memento.output(0.2).contains(&heavy),
        "H-Memento failed to forget the stale subnet"
    );
    assert!(
        !baseline.output(0.2).contains(&heavy),
        "Baseline failed to forget the stale subnet"
    );
    // The interval algorithm still sees 25% of its (never reset) interval in
    // the old subnet, so with a threshold of 20% it keeps reporting it —
    // exactly the staleness sliding windows avoid.
    assert!(
        mst.output(0.2).contains(&heavy),
        "interval MST should still report the stale subnet"
    );
}

/// Degenerate inputs: single-flow traffic and all-distinct traffic.
#[test]
fn degenerate_traffic_patterns() {
    let window = 5_000;
    let mut memento = Memento::new(64, window, 0.5, 1);
    for _ in 0..2 * window {
        memento.update(42u64);
    }
    let est = memento.estimate(&42);
    assert!(
        (est - window as f64).abs() < 0.25 * window as f64,
        "single-flow estimate {est} far from window size {window}"
    );

    let mut memento = Memento::new(64, window, 0.5, 1);
    for i in 0..2 * window as u64 {
        memento.update(i); // every packet a new flow
    }
    let hh = memento.heavy_hitters(0.1 * window as f64);
    assert!(
        hh.is_empty(),
        "no flow should be heavy in all-distinct traffic"
    );

    let hier = SrcHierarchy;
    let mut hm = HMemento::new(hier, 256, window, 1.0, 0.01, 2);
    for i in 0..window as u32 {
        hm.update(i.wrapping_mul(2_654_435_761)); // scattered sources
    }
    let hhh = hm.output(0.3);
    // Only coarse prefixes can aggregate scattered traffic.
    for p in &hhh {
        assert!(
            hier.depth(p) >= 3,
            "unexpectedly specific HHH {p} for scattered traffic"
        );
    }
}
