//! Cross-crate tests of the multi-core sharding engine: property-based
//! equivalence against the single-threaded estimators on deterministic
//! paths — including the `skip(n)` bulk-advance semantics that anchor every
//! shard's window at the global stream position — and a trait-object smoke
//! test showing the engine rides behind the same `SlidingWindowEstimator`
//! surface as everything else.

use memento::sketches::ExactWindow;
use memento::traits::SlidingWindowEstimator;
use memento::WindowQuery;
use memento::{Memento, ShardedEstimator, TraceGenerator, TracePreset, Wcss};
use proptest::prelude::*;

/// The shard counts the acceptance criteria call out.
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// A skewed stream over a 10-key universe: key 0 dominates (~60% of
/// packets), a few warm keys share most of the rest. This is exactly the
/// distribution under which count-based `W/N` shard windows used to
/// diverge — the shard owning key 0 receives far more than `1/N` of the
/// stream.
fn skewed_stream(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            6 => Just(0u64),
            3 => 1u64..4,
            1 => 4u64..10,
        ],
        50..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `skip(n)` on Memento/WCSS is bit-for-bit `n` unrecorded
    /// `window_update()` calls, at any τ, alignment and overflow state.
    #[test]
    fn memento_skip_equals_n_window_updates(
        stream in skewed_stream(1_200),
        n in 1u64..3_000,
        tau_exp in 0u32..3,
    ) {
        let window = 700; // deliberately not a multiple of the block count
        let counters = 9;
        let tau = 0.5f64.powi(tau_exp as i32);
        let mut bulk: Memento<u64> = Memento::new(counters, window, tau, 13);
        let mut per_packet: Memento<u64> = Memento::new(counters, window, tau, 13);
        for &key in &stream {
            bulk.update(key);
            per_packet.update(key);
        }
        bulk.skip(n);
        for _ in 0..n {
            per_packet.window_update();
        }
        prop_assert_eq!(bulk.processed(), per_packet.processed());
        prop_assert_eq!(bulk.tracked_overflows(), per_packet.tracked_overflows());
        for key in 0u64..10 {
            prop_assert_eq!(
                bulk.estimate(&key).to_bits(),
                per_packet.estimate(&key).to_bits(),
                "skip({}) != {} window updates for key {}", n, n, key
            );
        }
    }

    /// `skip(n)` on a full `ExactWindow` is `n` evictions without an
    /// insert; in general it matches a model that materializes the skipped
    /// positions as unique never-queried filler keys.
    #[test]
    fn exact_window_skip_equals_evictions_without_insert(
        stream in skewed_stream(1_500),
        skips in prop::collection::vec((0usize..40, 1u64..150), 1..12),
    ) {
        let window = 300;
        let mut fast: ExactWindow<u64> = ExactWindow::new(window);
        let mut model: ExactWindow<u64> = ExactWindow::new(window);
        let mut filler = 1u64 << 40;
        let mut cursor = 0usize;
        for (advance, n) in skips {
            let end = (cursor + advance).min(stream.len());
            for &key in &stream[cursor..end] {
                fast.add(key);
                model.add(key);
            }
            cursor = end;
            fast.skip(n);
            for _ in 0..n {
                model.add(filler); // an eviction-without-insert stand-in
                filler += 1;
            }
        }
        prop_assert_eq!(fast.processed(), model.processed());
        for key in 0u64..10 {
            prop_assert_eq!(fast.query(&key), model.query(&key), "key {}", key);
        }
    }

    /// The trait-provided `update_batch_positioned` coalesces gap stamps —
    /// one closed-form `skip` per run of foreign packets, one `update_batch`
    /// per run of own packets — and must equal the per-key
    /// `skip(gap); update(key)` interleaving it documents (exactly, on a
    /// deterministic implementor).
    #[test]
    fn default_positioned_batch_equals_per_key_interleaving(
        pairs in prop::collection::vec((0u64..7, 0u64..30), 1..250),
    ) {
        let window = 100;
        let mut coalesced: ExactWindow<u64> = ExactWindow::new(window);
        let mut per_key: ExactWindow<u64> = ExactWindow::new(window);
        let gaps: Vec<u64> = pairs.iter().map(|(g, _)| *g).collect();
        let keys: Vec<u64> = pairs.iter().map(|(_, k)| *k).collect();
        coalesced.update_batch_positioned(&gaps, &keys);
        for (gap, key) in gaps.iter().zip(&keys) {
            if *gap > 0 {
                SlidingWindowEstimator::skip(&mut per_key, *gap);
            }
            SlidingWindowEstimator::update(&mut per_key, *key);
        }
        prop_assert_eq!(coalesced.processed(), per_key.processed());
        prop_assert_eq!(coalesced.occupancy(), per_key.occupancy());
        for key in 0u64..30 {
            prop_assert_eq!(coalesced.query(&key), per_key.query(&key), "key {}", key);
        }
    }

    /// Global-position windows: on the fully deterministic path (WCSS =
    /// Memento with τ = 1), a sharded estimator over N ∈ {1, 2, 4} shards
    /// answers exactly like the single-threaded estimator **on skewed key
    /// distributions with streams well beyond the old per-shard `W/N`
    /// window** — the case PR 2's count-based windows could not assert
    /// (the shard owning the dominant flow would have expired packets the
    /// single instance still covers). The router's gap stamps anchor every
    /// shard at the global position, so below `W` global packets the
    /// deterministic states coincide bit-for-bit (counters cover the key
    /// universe on both sides, so no Space-Saving eviction differs).
    #[test]
    fn sharded_wcss_matches_single_threaded_on_skewed_streams(
        stream in skewed_stream(6_000),
        shard_idx in 0usize..3,
    ) {
        let shards = SHARD_SWEEP[shard_idx];
        let window = 8_000; // > |stream|: no frame flush / retirement yet
        let counters = 40; // covers the 10-key universe in every partition
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::wcss(shards, counters, window);
        let mut single: Wcss<u64> = Wcss::new(counters, window);
        for &key in &stream {
            sharded.update(key);
            single.update(key);
        }
        prop_assert_eq!(sharded.processed(), stream.len() as u64);
        prop_assert_eq!(sharded.processed(), Wcss::processed(&single));
        for key in 0u64..10 {
            prop_assert_eq!(
                sharded.estimate(&key).to_bits(),
                Wcss::estimate(&single, &key).to_bits(),
                "estimates diverge for key {} at {} shards", key, shards
            );
        }
        // Same per-key estimates => same heavy-hitter sets at any threshold.
        let threshold = stream.len() as f64 * 0.2;
        let mut merged = sharded.heavy_hitters(threshold);
        let mut expected = Wcss::heavy_hitters(&single, threshold);
        merged.sort_by_key(|(k, _)| *k);
        expected.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(merged, expected);
    }

    /// With an exact per-shard oracle the equivalence holds for *any*
    /// stream length — far beyond the window, with expiry in full swing on
    /// a heavily skewed stream, for every shard count: the per-key gap
    /// stamps replay every item at its exact global position even through
    /// buffered batches.
    #[test]
    fn sharded_exact_matches_exact_window_beyond_the_window(
        stream in skewed_stream(2_000),
        shard_idx in 0usize..3,
    ) {
        let shards = SHARD_SWEEP[shard_idx];
        let window = 500; // much shorter than most streams: expiry is live
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(shards, window);
        let mut oracle: ExactWindow<u64> = ExactWindow::new(window);
        for &key in &stream {
            sharded.update(key);
            oracle.add(key);
        }
        prop_assert_eq!(sharded.processed(), stream.len() as u64);
        for key in 0u64..10 {
            prop_assert_eq!(
                sharded.estimate(&key),
                oracle.query(&key) as f64,
                "exact counts diverge for key {} at {} shards", key, shards
            );
        }
    }

    /// Batched shipment keeps the exact-oracle equivalence as long as the
    /// stream stays inside the window (estimates below `W` positions are
    /// insensitive to the in-flight batch compression).
    #[test]
    fn sharded_exact_matches_exact_window_counts(
        stream in prop::collection::vec(0u64..200, 50..1500),
        shard_idx in 0usize..3,
    ) {
        let shards = SHARD_SWEEP[shard_idx];
        let window = 8_000;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(shards, window);
        let mut oracle: ExactWindow<u64> = ExactWindow::new(window);
        // Arbitrary batch splits exercise the channel path.
        for part in stream.chunks(97) {
            sharded.update_batch(part);
        }
        for &key in &stream {
            oracle.add(key);
        }
        prop_assert_eq!(sharded.processed(), stream.len() as u64);
        for key in 0u64..200 {
            prop_assert_eq!(
                sharded.estimate(&key),
                oracle.query(&key) as f64,
                "exact counts diverge for key {} at {} shards", key, shards
            );
        }
    }
}

/// The sharded engine behind `Box<dyn SlidingWindowEstimator<u64>>`, next to
/// the single-threaded estimators, driven by one shared loop — the same
/// pattern the figure harnesses and detectors use.
#[test]
fn sharded_estimators_ride_behind_the_trait_object() {
    let window = 40_000;
    let counters = 512;
    // Short enough that nothing expires: every shard's full-W global-
    // position window then covers the whole stream, and the error bounds
    // hold sharded exactly as they do single-threaded.
    let packets: Vec<u64> = {
        let mut gen = TraceGenerator::new(TracePreset::datacenter(), 99);
        (0..8_000).map(|_| gen.next_packet().flow()).collect()
    };

    let mut estimators: Vec<Box<dyn SlidingWindowEstimator<u64>>> = vec![
        Box::new(Wcss::new(counters, window)),
        Box::new(ShardedEstimator::wcss(2, counters, window)),
        Box::new(ShardedEstimator::wcss(4, counters, window)),
        Box::new(ShardedEstimator::memento(4, counters, window, 1.0, 3)),
        Box::new(ShardedEstimator::exact(3, window)),
    ];

    let mut oracle: ExactWindow<u64> = ExactWindow::new(window);
    for chunk in packets.chunks(1_024) {
        for est in &mut estimators {
            est.update_batch(chunk);
        }
        for &flow in chunk {
            oracle.add(flow);
        }
    }

    let heavy: Vec<(u64, u64)> = oracle.heavy_hitters((packets.len() / 50) as u64);
    assert!(!heavy.is_empty(), "trace produced no heavy flows");
    let top = heavy[0].0;

    for est in &estimators {
        assert!(est.mergeable(), "{} must be mergeable", est.name());
        assert_eq!(
            est.processed(),
            packets.len() as u64,
            "{} lost packets",
            est.name()
        );
        assert!(est.space_bytes() > 0, "{} reports no memory", est.name());
        let bound = est.error_bound();
        assert!(bound.is_finite(), "{} has no finite bound", est.name());
        for &(flow, real) in &heavy {
            let err = (est.estimate(&flow) - real as f64).abs();
            assert!(
                err <= bound,
                "{}: flow {flow:x} off by {err}, bound {bound}",
                est.name()
            );
        }
        let reported = est.heavy_hitters(0.5 * heavy[0].1 as f64);
        assert!(
            reported.iter().any(|(k, _)| *k == top),
            "{} missed the top flow",
            est.name()
        );
    }
}
