//! Cross-crate tests of the multi-core sharding engine: property-based
//! equivalence against the single-threaded estimators on deterministic
//! paths, and a trait-object smoke test showing the engine rides behind the
//! same `SlidingWindowEstimator` surface as everything else.

use memento::sketches::ExactWindow;
use memento::traits::SlidingWindowEstimator;
use memento::{ShardedEstimator, TraceGenerator, TracePreset, Wcss};
use proptest::prelude::*;

/// The shard counts the satellite task calls out.
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On the fully deterministic path (WCSS = Memento with τ = 1), a
    /// sharded estimator over N ∈ {1, 2, 4} shards answers exactly like the
    /// single-threaded estimator while every packet is still inside each
    /// shard's window: per-flow window totals, the heavy-hitter set and the
    /// processed count all match.
    ///
    /// The configuration is chosen so the deterministic states coincide:
    /// window and counters divide evenly by every shard count (equal block
    /// sizes on both sides), per-shard counters cover the key universe (no
    /// Space-Saving evictions), and the stream is shorter than a per-shard
    /// window (nothing expires on either side).
    #[test]
    fn sharded_wcss_matches_single_threaded_window_totals(
        stream in prop::collection::vec(0u64..10, 50..1500),
        shard_idx in 0usize..3,
    ) {
        let shards = SHARD_SWEEP[shard_idx];
        let window = 8_000; // divisible by 1, 2, 4; W/N >= 2000 > |stream|
        let counters = 40; // >= 10 keys per shard even at N = 4
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::wcss(shards, counters, window);
        let mut single: Wcss<u64> = Wcss::new(counters, window);
        for &key in &stream {
            sharded.update(key);
            single.update(key);
        }
        prop_assert_eq!(sharded.processed(), stream.len() as u64);
        prop_assert_eq!(sharded.processed(), Wcss::processed(&single));
        for key in 0u64..10 {
            prop_assert_eq!(
                sharded.estimate(&key).to_bits(),
                Wcss::estimate(&single, &key).to_bits(),
                "estimates diverge for key {} at {} shards", key, shards
            );
        }
        // Same per-key estimates => same heavy-hitter sets at any threshold.
        let threshold = stream.len() as f64 * 0.2;
        let mut merged = sharded.heavy_hitters(threshold);
        let mut expected = Wcss::heavy_hitters(&single, threshold);
        merged.sort_by_key(|(k, _)| *k);
        expected.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(merged, expected);
    }

    /// With an exact per-shard oracle the equivalence needs no counter
    /// assumptions: any stream shorter than a per-shard window yields
    /// exactly the single exact-window counts, for every shard count.
    #[test]
    fn sharded_exact_matches_exact_window_counts(
        stream in prop::collection::vec(0u64..200, 50..1500),
        shard_idx in 0usize..3,
    ) {
        let shards = SHARD_SWEEP[shard_idx];
        let window = 8_000;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(shards, window);
        let mut oracle: ExactWindow<u64> = ExactWindow::new(window);
        // Arbitrary batch splits exercise the channel path.
        for part in stream.chunks(97) {
            sharded.update_batch(part);
        }
        for &key in &stream {
            oracle.add(key);
        }
        prop_assert_eq!(sharded.processed(), stream.len() as u64);
        for key in 0u64..200 {
            prop_assert_eq!(
                sharded.estimate(&key),
                oracle.query(&key) as f64,
                "exact counts diverge for key {} at {} shards", key, shards
            );
        }
    }
}

/// The sharded engine behind `Box<dyn SlidingWindowEstimator<u64>>`, next to
/// the single-threaded estimators, driven by one shared loop — the same
/// pattern the figure harnesses and detectors use.
#[test]
fn sharded_estimators_ride_behind_the_trait_object() {
    let window = 40_000;
    let counters = 512;
    // Short enough that no per-shard window (W/4 = 10_000) expires: the
    // error bounds then hold sharded exactly as they do single-threaded.
    let packets: Vec<u64> = {
        let mut gen = TraceGenerator::new(TracePreset::datacenter(), 99);
        (0..8_000).map(|_| gen.next_packet().flow()).collect()
    };

    let mut estimators: Vec<Box<dyn SlidingWindowEstimator<u64>>> = vec![
        Box::new(Wcss::new(counters, window)),
        Box::new(ShardedEstimator::wcss(2, counters, window)),
        Box::new(ShardedEstimator::wcss(4, counters, window)),
        Box::new(ShardedEstimator::memento(4, counters, window, 1.0, 3)),
        Box::new(ShardedEstimator::exact(3, window)),
    ];

    let mut oracle: ExactWindow<u64> = ExactWindow::new(window);
    for chunk in packets.chunks(1_024) {
        for est in &mut estimators {
            est.update_batch(chunk);
        }
        for &flow in chunk {
            oracle.add(flow);
        }
    }

    let heavy: Vec<(u64, u64)> = oracle.heavy_hitters((packets.len() / 50) as u64);
    assert!(!heavy.is_empty(), "trace produced no heavy flows");
    let top = heavy[0].0;

    for est in &estimators {
        assert!(est.mergeable(), "{} must be mergeable", est.name());
        assert_eq!(
            est.processed(),
            packets.len() as u64,
            "{} lost packets",
            est.name()
        );
        assert!(est.space_bytes() > 0, "{} reports no memory", est.name());
        let bound = est.error_bound();
        assert!(bound.is_finite(), "{} has no finite bound", est.name());
        for &(flow, real) in &heavy {
            let err = (est.estimate(&flow) - real as f64).abs();
            assert!(
                err <= bound,
                "{}: flow {flow:x} off by {err}, bound {bound}",
                est.name()
            );
        }
        let reported = est.heavy_hitters(0.5 * heavy[0].1 as f64);
        assert!(
            reported.iter().any(|(k, _)| *k == top),
            "{} missed the top flow",
            est.name()
        );
    }
}
