//! Cross-crate tests of the PR 7 snapshot query plane.
//!
//! * Differential properties: the engines' snapshot-served answers are
//!   **bit-for-bit** equal to the historical flush-then-FIFO answers (still
//!   reachable through the hidden `query_via_fifo` escape hatch), for
//!   Memento, WCSS and the exact window across shard counts 1, 2, 4.
//! * A torn-read stress test: four reader threads hammer a
//!   `SnapshotReader` while the engine ingests and publishes every batch;
//!   every observed snapshot must be internally consistent (one epoch, all
//!   shards present) and every thread's view monotone.
//! * A publish-rate sweep (PR 8): the delta-publication plane applies
//!   incremental patches at whatever cadence the policy dictates, so
//!   engines publishing every 1, 2 and 64 batches must answer bit-for-bit
//!   identically at every query point.

use memento::sketches::fasthash;
use memento::traits::SlidingWindowEstimator;
use memento::{
    HhhAlgorithm, HhhQuery, PublishPolicy, ShardedEstimator, ShardedHhh, SrcHierarchy, WindowQuery,
};
use proptest::prelude::*;

/// The shard counts the acceptance criteria call out.
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// The flush-then-FIFO answer for one key: route to the owning shard and
/// run the query on the worker thread, after shipping everything pending —
/// exactly what the engines did before the snapshot plane.
fn fifo_estimate(sharded: &ShardedEstimator<u64>, key: u64) -> f64 {
    let shard = fasthash::route(&key, sharded.shards());
    sharded.query_via_fifo(shard, move |est| est.estimate(&key))
}

fn fifo_processed(sharded: &ShardedEstimator<u64>) -> u64 {
    (0..sharded.shards())
        .map(|s| sharded.query_via_fifo(s, |est| est.processed()))
        .max()
        .unwrap()
}

/// Canonicalized (sorted by key) heavy-hitter set from the FIFO path:
/// per-shard sets, concatenated. Key-disjoint by construction.
fn fifo_heavy_hitters(sharded: &ShardedEstimator<u64>, threshold: f64) -> Vec<(u64, f64)> {
    let mut all: Vec<(u64, f64)> = (0..sharded.shards())
        .flat_map(|s| sharded.query_via_fifo(s, move |est| est.heavy_hitters(threshold)))
        .collect();
    all.sort_by_key(|&(k, _)| k);
    all
}

fn snapshot_heavy_hitters(sharded: &ShardedEstimator<u64>, threshold: f64) -> Vec<(u64, f64)> {
    let mut all = sharded.heavy_hitters(threshold);
    all.sort_by_key(|&(k, _)| k);
    all
}

fn assert_bitwise_match(sharded: &ShardedEstimator<u64>, stream: &[u64], window: usize) {
    // Estimates: every key in the universe, bit-for-bit.
    for key in 0..50u64 {
        let snap = sharded.estimate(&key);
        let fifo = fifo_estimate(sharded, key);
        assert_eq!(
            snap.to_bits(),
            fifo.to_bits(),
            "{}: snapshot {snap} != fifo {fifo} for key {key} (|stream|={}, W={window})",
            sharded.name(),
            stream.len(),
        );
    }
    // Heavy hitters at a few thresholds, as key→estimate maps.
    for threshold in [0.0, 1.0, stream.len() as f64 / 20.0] {
        let snap = snapshot_heavy_hitters(sharded, threshold);
        let fifo = fifo_heavy_hitters(sharded, threshold);
        assert_eq!(snap.len(), fifo.len(), "hh cardinality at {threshold}");
        for (&(sk, sv), &(fk, fv)) in snap.iter().zip(&fifo) {
            assert_eq!((sk, sv.to_bits()), (fk, fv.to_bits()), "hh at {threshold}");
        }
    }
    assert_eq!(sharded.processed(), fifo_processed(sharded));
    assert_eq!(sharded.processed(), stream.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Memento (τ < 1): snapshot answers equal flush-then-FIFO answers
    /// bit-for-bit at every shard count.
    #[test]
    fn memento_snapshot_matches_fifo(
        stream in prop::collection::vec(0u64..50, 100..600),
        window in 64usize..512,
    ) {
        for shards in SHARD_SWEEP {
            let mut sharded = ShardedEstimator::memento(shards, 64, window, 0.25, 42);
            sharded.update_batch(&stream);
            assert_bitwise_match(&sharded, &stream, window);
        }
    }

    /// WCSS (τ = 1): same property.
    #[test]
    fn wcss_snapshot_matches_fifo(
        stream in prop::collection::vec(0u64..50, 100..600),
        window in 64usize..512,
    ) {
        for shards in SHARD_SWEEP {
            let mut sharded = ShardedEstimator::wcss(shards, 64, window);
            sharded.update_batch(&stream);
            assert_bitwise_match(&sharded, &stream, window);
        }
    }

    /// Exact windows: same property, and mid-stream queries interleaved
    /// with updates and skips keep matching.
    #[test]
    fn exact_snapshot_matches_fifo(
        stream in prop::collection::vec(0u64..50, 100..600),
        window in 64usize..512,
        skip in 1u64..200,
    ) {
        for shards in SHARD_SWEEP {
            let mut sharded = ShardedEstimator::exact(shards, window);
            let (a, b) = stream.split_at(stream.len() / 2);
            sharded.update_batch(a);
            // Mid-stream snapshot query (forces a publication)…
            let _ = sharded.estimate(&0);
            sharded.skip(skip);
            sharded.update_batch(b);
            for key in 0..50u64 {
                let snap = sharded.estimate(&key);
                let fifo = fifo_estimate(&sharded, key);
                prop_assert_eq!(snap.to_bits(), fifo.to_bits());
            }
            prop_assert_eq!(sharded.processed(), stream.len() as u64 + skip);
        }
    }
}

/// The sharded HHH engine: snapshot-served prefix estimates and HHH sets
/// equal the FIFO-derived ones bit-for-bit.
#[test]
fn hhh_snapshot_matches_fifo() {
    use memento::Prefix1D;

    let window = 10_000;
    let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 2_048, window, 1.0, 0.01, 13);
    let items: Vec<u32> = (0..window as u32)
        .map(|i| {
            if i % 3 == 0 {
                u32::from_be_bytes([10, (i % 67) as u8, (i % 31) as u8, (i % 7) as u8])
            } else {
                u32::from_be_bytes([50 + (i % 93) as u8, (i % 201) as u8, 3, (i % 11) as u8])
            }
        })
        .collect();
    sharded.update_batch(&items);
    for len in [8u8, 16, 24, 32] {
        let p = Prefix1D::new(u32::from_be_bytes([10, 1, 2, 3]), len);
        let snap = sharded.estimate(&p);
        // The snapshot sums per-shard frozen estimates in shard order; the
        // FIFO path sums live per-shard estimates in the same order.
        let fifo: f64 = (0..4)
            .map(|s| sharded.query_via_fifo(s, move |alg| alg.estimate(&p)))
            .sum();
        assert_eq!(snap.to_bits(), fifo.to_bits(), "/{len} estimate");
    }
    let out = sharded.output(0.2);
    assert!(out.contains(&Prefix1D::new(u32::from_be_bytes([10, 0, 0, 0]), 8)));
}

/// Four reader threads race a publishing writer. Every snapshot a reader
/// grabs must be from exactly one epoch (all shards present, epoch tag
/// consistent) and each thread's observed epoch/position must be monotone
/// non-decreasing — i.e. no torn or time-travelling reads.
#[test]
fn concurrent_readers_never_observe_torn_snapshots() {
    let window = 50_000;
    let sharded = {
        let mut s = ShardedEstimator::memento(4, 256, window, 1.0, 99).with_policy(PublishPolicy {
            every_batches: 1,
            on_query: false,
        });
        // Small batches → frequent publications → many epoch swaps to race.
        #[allow(deprecated)]
        s.set_flush_threshold(64);
        s
    };
    let reader = sharded.reader();
    let writer_rounds = 200usize;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = reader.clone();
            handles.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut last_processed = 0u64;
                let mut observed = 0usize;
                while observed < 2_000 {
                    if let Some(snap) = r.latest() {
                        // Internal consistency: a snapshot merged from a
                        // complete epoch always carries all 4 shards.
                        assert_eq!(snap.shards(), 4, "torn snapshot");
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        let processed = snap.processed();
                        assert!(processed >= last_processed, "position went backwards");
                        // Reads through the trait surface agree with the
                        // snapshot the handle just returned (same epoch or
                        // a newer one).
                        assert!(r.processed() >= processed);
                        last_epoch = snap.epoch();
                        last_processed = processed;
                        observed += 1;
                    }
                    std::hint::spin_loop();
                }
                (last_epoch, last_processed)
            }));
        }

        let mut writer = sharded;
        let keys: Vec<u64> = (0..512u64).collect();
        for _ in 0..writer_rounds {
            writer.update_batch(&keys);
        }
        writer.publish_now();

        for h in handles {
            let (epoch, processed) = h.join().unwrap();
            assert!(epoch > 0, "reader never saw a published epoch");
            assert!(processed <= (writer_rounds * 512) as u64);
        }
    });
}

/// Readers keep answering (from the last published epoch) while the engine
/// ingests without publishing — bounded staleness, no blocking.
#[test]
fn reader_staleness_is_bounded_by_publications() {
    let mut sharded = ShardedEstimator::wcss(2, 128, 10_000).with_policy(PublishPolicy {
        every_batches: 0, // no periodic publication
        on_query: false,  // engine queries do not publish either
    });
    let reader = sharded.reader();
    sharded.update_batch(&[1u64; 500]);
    assert_eq!(reader.processed(), 0, "nothing published yet");
    let epoch = sharded.publish_now();
    assert_eq!(reader.processed(), 500);
    assert_eq!(reader.latest().unwrap().epoch(), epoch);
    // More ingest without a publication: the reader stays at the epoch.
    sharded.update_batch(&[1u64; 500]);
    assert_eq!(
        reader.processed(),
        500,
        "stale by design until next publish"
    );
    sharded.publish_now();
    assert_eq!(reader.processed(), 1_000);
    // WCSS one-sided error: never undershoots, overshoots ≤ 4W/k.
    let est = WindowQuery::estimate(&reader, &1);
    assert!(
        (1_000.0..=1_000.0 + 4.0 * 10_000.0 / 128.0).contains(&est),
        "est = {est}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PR 8 satellite: the publication cadence must never change an answer.
    /// Identical engines driven by the same stream but publishing every 1,
    /// 2 and 64 shipped batches group the incremental patches differently —
    /// many small deltas versus few large ones — yet at every query point
    /// their estimates, heavy-hitter lists (including order) and stream
    /// positions are bit-for-bit identical, and equal to the
    /// flush-then-FIFO reference. The repeated per-key queries after the
    /// first forced publication also exercise the unchanged-engine restamp
    /// short circuit inside a differential check.
    #[test]
    fn publish_rate_sweep_is_bitwise_invariant(
        raw in prop::collection::vec(0u64..50, 400..900),
        window in 200usize..2_000,
    ) {
        let mut engines: Vec<ShardedEstimator<u64>> = [1usize, 2, 64]
            .into_iter()
            .map(|every_batches| {
                let mut engine = ShardedEstimator::memento(2, 64, window, 0.25, 11)
                    .with_policy(PublishPolicy {
                        every_batches,
                        on_query: true,
                    });
                // A small ship batch makes the cadences actually diverge
                // (the default threshold would ship once per chunk).
                #[allow(deprecated)]
                engine.set_flush_threshold(32);
                engine
            })
            .collect();
        for chunk in raw.chunks(97) {
            for engine in &mut engines {
                engine.update_batch(chunk);
            }
            for key in 0..50u64 {
                let answers: Vec<u64> = engines
                    .iter()
                    .map(|e| e.estimate(&key).to_bits())
                    .collect();
                assert_eq!(answers[0], answers[1], "key {key}: rate 1 vs 2");
                assert_eq!(answers[1], answers[2], "key {key}: rate 2 vs 64");
                assert_eq!(
                    answers[2],
                    fifo_estimate(&engines[2], key).to_bits(),
                    "key {key}: snapshot vs FIFO"
                );
            }
            let hh: Vec<Vec<(u64, u64)>> = engines
                .iter()
                .map(|e| {
                    e.heavy_hitters(1.0)
                        .into_iter()
                        .map(|(k, v)| (k, v.to_bits()))
                        .collect()
                })
                .collect();
            assert_eq!(hh[0], hh[1], "heavy hitters: rate 1 vs 2");
            assert_eq!(hh[1], hh[2], "heavy hitters: rate 2 vs 64");
            let positions: Vec<u64> = engines.iter().map(|e| e.processed()).collect();
            assert_eq!(positions[0], positions[1]);
            assert_eq!(positions[1], positions[2]);
        }
    }
}
