//! Cross-crate integration tests: the network-wide pipeline
//! (traces → measurement points → controller) and the flood scenario.

use memento::hierarchy::Prefix1D;
use memento::lb::scenario::FloodConfig;
use memento::lb::{FloodExperiment, FloodExperimentConfig};
use memento::netwide::{NetworkSimulator, SimConfig, SimMetrics, WireFormat};
use memento::{CommMethod, SrcHierarchy, TraceGenerator, TracePreset};

fn run_sim(
    method: CommMethod,
    budget: f64,
    packets: usize,
) -> (NetworkSimulator<SrcHierarchy>, SimMetrics) {
    let config = SimConfig {
        points: 10,
        window: 20_000,
        budget,
        counters: 2_048,
        method,
        delta: 0.01,
        seed: 77,
    };
    let mut sim = NetworkSimulator::new(SrcHierarchy, config, WireFormat::tcp_src());
    let mut trace = TraceGenerator::new(TracePreset::datacenter(), 8);
    let mut metrics = SimMetrics::new();
    for i in 0..packets {
        let pkt = trace.next_packet();
        sim.process(pkt.src);
        if i > packets / 2 && i % 64 == 0 {
            let p = Prefix1D::new(pkt.src, 8);
            metrics.record(sim.estimate(&p), sim.exact(&p) as f64);
        }
    }
    (sim, metrics)
}

/// All three communication methods must respect the bandwidth budget and
/// produce estimates in the right ballpark; Batch must not be (meaningfully)
/// worse than Sample.
#[test]
fn netwide_methods_respect_budget_and_track_truth() {
    let mut rmse = std::collections::HashMap::new();
    for method in [
        CommMethod::Aggregation,
        CommMethod::Sample,
        CommMethod::Batch(44),
    ] {
        let (sim, metrics) = run_sim(method, 1.0, 60_000);
        assert!(
            sim.bytes_per_packet() <= 1.1,
            "{} exceeded the budget: {}",
            method.name(),
            sim.bytes_per_packet()
        );
        assert!(sim.reports() > 0, "{} never reported", method.name());
        rmse.insert(method.name(), metrics.rmse());
    }
    let batch = rmse["batch-44"];
    let sample = rmse["sample"];
    assert!(
        batch <= sample * 1.5,
        "batch RMSE {batch} should not be substantially worse than sample {sample}"
    );
}

/// A larger budget must not hurt accuracy (sanity of the τ = B·b/(O+E·b)
/// scheduling).
#[test]
fn accuracy_improves_with_budget() {
    let (_, low) = run_sim(CommMethod::Batch(44), 0.5, 60_000);
    let (_, high) = run_sim(CommMethod::Batch(44), 8.0, 60_000);
    assert!(
        high.rmse() <= low.rmse() * 1.2,
        "8 B/pkt budget (rmse {}) should not be worse than 0.5 B/pkt (rmse {})",
        high.rmse(),
        low.rmse()
    );
}

/// End-to-end flood scenario: detection + mitigation with the Batch method
/// finds the attacking subnets and stops most of the flood, and beats the
/// idealized Aggregation baseline — the paper's headline network-wide result.
#[test]
fn flood_mitigation_end_to_end() {
    let base = FloodExperimentConfig {
        proxies: 5,
        backends_per_proxy: 2,
        window: 30_000,
        budget: 4.0,
        counters: 2_048,
        method: CommMethod::Batch(44),
        theta: 0.02,
        total_packets: 90_000,
        flood: FloodConfig {
            num_subnets: 25,
            flood_probability: 0.7,
            start: 15_000,
        },
        preset: TracePreset::backbone(),
        check_interval: 1_000,
        mitigate: true,
        seed: 99,
    };

    let batch = FloodExperiment::new(base.clone()).run();
    assert!(
        batch.detected_subnets() >= 20,
        "batch detected only {}/25 subnets",
        batch.detected_subnets()
    );
    assert!(batch.miss_rate() < 0.6, "miss rate {}", batch.miss_rate());

    let mut agg_cfg = base;
    agg_cfg.method = CommMethod::Aggregation;
    let agg = FloodExperiment::new(agg_cfg).run();
    assert!(
        batch.missed_attack_requests <= agg.missed_attack_requests,
        "batch missed {} flood requests, aggregation {}",
        batch.missed_attack_requests,
        agg.missed_attack_requests
    );
}
